open Fusion_data

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | True
  | Cmp of string * cmp * Value.t
  | Between of string * Value.t * Value.t
  | In_list of string * Value.t list
  | Prefix of string * string
  | Is_null of string
  | And of t * t
  | Or of t * t
  | Not of t

let cmp_to_string = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let cmp_holds op c =
  match op with
  | Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let string_has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let rec eval schema t tuple =
  match t with
  | True -> true
  | Cmp (attr, op, lit) -> (
    match Tuple.get_attr schema tuple attr with
    | Value.Null -> false
    | v -> cmp_holds op (Value.compare v lit))
  | Between (attr, lo, hi) -> (
    match Tuple.get_attr schema tuple attr with
    | Value.Null -> false
    | v -> Value.compare lo v <= 0 && Value.compare v hi <= 0)
  | In_list (attr, lits) -> (
    match Tuple.get_attr schema tuple attr with
    | Value.Null -> false
    | v -> List.exists (Value.equal v) lits)
  | Prefix (attr, prefix) -> (
    match Tuple.get_attr schema tuple attr with
    | Value.String s -> string_has_prefix ~prefix s
    | _ -> false)
  | Is_null attr -> Tuple.get_attr schema tuple attr = Value.Null
  | And (a, b) -> eval schema a tuple && eval schema b tuple
  | Or (a, b) -> eval schema a tuple || eval schema b tuple
  | Not a -> not (eval schema a tuple)

(* Same semantics as [eval], with attribute -> offset resolution done
   once per condition instead of once per tuple (a string hash lookup on
   the hot path otherwise). *)
let compile schema t =
  let rec go = function
    | True -> fun _ -> true
    | Cmp (attr, op, lit) ->
      let i = Schema.pos_exn schema attr in
      fun tu ->
        (match Tuple.get tu i with
        | Value.Null -> false
        | v -> cmp_holds op (Value.compare v lit))
    | Between (attr, lo, hi) ->
      let i = Schema.pos_exn schema attr in
      fun tu ->
        (match Tuple.get tu i with
        | Value.Null -> false
        | v -> Value.compare lo v <= 0 && Value.compare v hi <= 0)
    | In_list (attr, lits) ->
      let i = Schema.pos_exn schema attr in
      fun tu ->
        (match Tuple.get tu i with
        | Value.Null -> false
        | v -> List.exists (Value.equal v) lits)
    | Prefix (attr, prefix) ->
      let i = Schema.pos_exn schema attr in
      fun tu ->
        (match Tuple.get tu i with
        | Value.String s -> string_has_prefix ~prefix s
        | _ -> false)
    | Is_null attr ->
      let i = Schema.pos_exn schema attr in
      fun tu -> Tuple.get tu i = Value.Null
    | And (a, b) ->
      let fa = go a and fb = go b in
      fun tu -> fa tu && fb tu
    | Or (a, b) ->
      let fa = go a and fb = go b in
      fun tu -> fa tu || fb tu
    | Not a ->
      let fa = go a in
      fun tu -> not (fa tu)
  in
  go t

let attrs t =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let record a =
    if not (Hashtbl.mem seen a) then begin
      Hashtbl.add seen a ();
      out := a :: !out
    end
  in
  let rec go = function
    | True -> ()
    | Cmp (a, _, _) | Between (a, _, _) | In_list (a, _) | Prefix (a, _) | Is_null a ->
      record a
    | And (x, y) | Or (x, y) ->
      go x;
      go y
    | Not x -> go x
  in
  go t;
  List.rev !out

let validate schema t =
  let check_attr a k =
    match Schema.ty schema a with
    | None -> Error (Printf.sprintf "unknown attribute %S" a)
    | Some ty -> k ty
  in
  let check_lit a ty v =
    match Value.ty_of v with
    | None -> Ok () (* Null literal: legal, never matches *)
    | Some lit_ty ->
      let numeric = function Value.Tint | Value.Tfloat -> true | _ -> false in
      if lit_ty = ty || (numeric lit_ty && numeric ty) then Ok ()
      else
        Error
          (Printf.sprintf "attribute %S has type %s but literal %s has type %s" a
             (Value.ty_to_string ty) (Value.to_string v) (Value.ty_to_string lit_ty))
  in
  let rec go = function
    | True -> Ok ()
    | Cmp (a, _, v) -> check_attr a (fun ty -> check_lit a ty v)
    | Between (a, lo, hi) ->
      check_attr a (fun ty ->
          match check_lit a ty lo with Ok () -> check_lit a ty hi | e -> e)
    | In_list (a, vs) ->
      check_attr a (fun ty ->
          List.fold_left
            (fun acc v -> match acc with Ok () -> check_lit a ty v | e -> e)
            (Ok ()) vs)
    | Prefix (a, _) ->
      check_attr a (fun ty ->
          if ty = Value.Tstring then Ok ()
          else Error (Printf.sprintf "LIKE requires a string attribute, %S is %s" a
                        (Value.ty_to_string ty)))
    | Is_null a -> check_attr a (fun _ -> Ok ())
    | And (x, y) | Or (x, y) -> ( match go x with Ok () -> go y | e -> e)
    | Not x -> go x
  in
  go t

let rec equal a b =
  match a, b with
  | True, True -> true
  | Cmp (x, op1, v1), Cmp (y, op2, v2) -> x = y && op1 = op2 && Value.equal v1 v2
  | Between (x, l1, h1), Between (y, l2, h2) ->
    x = y && Value.equal l1 l2 && Value.equal h1 h2
  | In_list (x, vs1), In_list (y, vs2) ->
    x = y && List.length vs1 = List.length vs2 && List.for_all2 Value.equal vs1 vs2
  | Prefix (x, p1), Prefix (y, p2) -> x = y && p1 = p2
  | Is_null x, Is_null y -> x = y
  | And (x1, y1), And (x2, y2) | Or (x1, y1), Or (x2, y2) -> equal x1 x2 && equal y1 y2
  | Not x, Not y -> equal x y
  | _ -> false

let rec simplify = function
  | And (a, b) -> (
    match simplify a, simplify b with
    | True, x | x, True -> x
    | Not True, _ | _, Not True -> Not True
    | x, y -> And (x, y))
  | Or (a, b) -> (
    match simplify a, simplify b with
    | True, _ | _, True -> True
    | Not True, x | x, Not True -> x
    | x, y -> Or (x, y))
  | Not a -> ( match simplify a with Not x -> x | x -> Not x)
  | atom -> atom

let rec pp ppf t =
  let pp_arg ppf x =
    match x with
    | Or _ | And _ | Not _ -> Format.fprintf ppf "(%a)" pp x
    | _ -> pp ppf x
  in
  match t with
  | True -> Format.pp_print_string ppf "TRUE"
  | Cmp (a, op, v) -> Format.fprintf ppf "%s %s %a" a (cmp_to_string op) Value.pp v
  | Between (a, lo, hi) ->
    Format.fprintf ppf "%s BETWEEN %a AND %a" a Value.pp lo Value.pp hi
  | In_list (a, vs) ->
    Format.fprintf ppf "%s IN (%a)" a
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Value.pp)
      vs
  | Prefix (a, p) -> Format.fprintf ppf "%s LIKE '%s%%'" a p
  | Is_null a -> Format.fprintf ppf "%s IS NULL" a
  | And (x, y) ->
    let pp_side ppf s =
      match s with Or _ -> Format.fprintf ppf "(%a)" pp s | _ -> pp_arg ppf s
    in
    Format.fprintf ppf "%a AND %a" pp_side x pp_side y
  | Or (x, y) -> Format.fprintf ppf "%a OR %a" pp_arg x pp_arg y
  | Not x -> Format.fprintf ppf "NOT %a" pp_arg x

let to_string t = Format.asprintf "%a" pp t

(* --- Parser ------------------------------------------------------------ *)

module P = Parser_state

let reserved =
  [ "AND"; "OR"; "NOT"; "BETWEEN"; "IN"; "LIKE"; "IS"; "TRUE"; "FALSE"; "NULL" ]

let is_reserved id = List.exists (fun kw -> Lexer.is_keyword kw id) reserved

(* [attr_of] lets the SQL front-end parse qualified attributes (u1.V); the
   plain condition parser uses bare identifiers. *)
let rec parse_or st attr_of =
  let left = parse_and st attr_of in
  if P.keyword st "OR" then Or (left, parse_or st attr_of) else left

and parse_and st attr_of =
  let left = parse_unary st attr_of in
  if P.keyword st "AND" then And (left, parse_and st attr_of) else left

and parse_unary st attr_of =
  if P.keyword st "NOT" then Not (parse_unary st attr_of) else parse_atom st attr_of

and parse_atom st attr_of =
  match P.peek st with
  | Lexer.Sym "(" ->
    P.advance st;
    let inner = parse_or st attr_of in
    P.expect_sym st ")";
    inner
  | Lexer.Ident id when Lexer.is_keyword "TRUE" id ->
    P.advance st;
    True
  | Lexer.Ident id when not (is_reserved id) ->
    P.advance st;
    let attr = attr_of st id in
    parse_predicate st attr
  | _ -> P.fail_at st "expected a condition"

and parse_predicate st attr =
  match P.peek st with
  | Lexer.Sym (("=" | "<>" | "<" | "<=" | ">" | ">=") as sym) ->
    P.advance st;
    let op =
      match sym with
      | "=" -> Eq
      | "<>" -> Ne
      | "<" -> Lt
      | "<=" -> Le
      | ">" -> Gt
      | _ -> Ge
    in
    Cmp (attr, op, P.literal st)
  | Lexer.Ident id when Lexer.is_keyword "BETWEEN" id ->
    P.advance st;
    let lo = P.literal st in
    P.expect_keyword st "AND";
    let hi = P.literal st in
    Between (attr, lo, hi)
  | Lexer.Ident id when Lexer.is_keyword "IN" id ->
    P.advance st;
    P.expect_sym st "(";
    let rec items acc =
      let v = P.literal st in
      match P.peek st with
      | Lexer.Sym "," ->
        P.advance st;
        items (v :: acc)
      | _ ->
        P.expect_sym st ")";
        List.rev (v :: acc)
    in
    In_list (attr, items [])
  | Lexer.Ident id when Lexer.is_keyword "IS" id ->
    P.advance st;
    let negated = P.keyword st "NOT" in
    P.expect_keyword st "NULL";
    if negated then Not (Is_null attr) else Is_null attr
  | Lexer.Ident id when Lexer.is_keyword "LIKE" id -> (
    P.advance st;
    match P.peek st with
    | Lexer.Str pattern ->
      P.advance st;
      let n = String.length pattern in
      if n > 0 && pattern.[n - 1] = '%'
         && not (String.contains (String.sub pattern 0 (n - 1)) '%')
      then Prefix (attr, String.sub pattern 0 (n - 1))
      else P.fail_at st "only prefix patterns ('p%') are supported in LIKE"
    | _ -> P.fail_at st "expected a string pattern after LIKE")
  | _ -> P.fail_at st "expected a predicate operator"

let bare_attr _st id = id

let parse_in st ~attr_of = parse_or st attr_of

let parse_predicate_in st ~attr = parse_predicate st attr

let parse input =
  match Parser_state.of_string input with
  | Error msg -> Error msg
  | Ok st -> (
    match parse_or st bare_attr with
    | cond ->
      if P.at_eof st then Ok cond
      else Error (Format.asprintf "trailing input: %a" Lexer.pp_token (P.peek st))
    | exception Parser_state.Parse_error msg -> Error msg)
