open Fusion_plan

let plan_estimate (env : Opt_env.t) plan =
  Plan_cost.estimate ~model:env.model ~est:env.est ~sources:env.sources ~conds:env.conds
    plan

let reprice env (optimized : Optimized.t) =
  { optimized with Optimized.est_cost = (plan_estimate env optimized.Optimized.plan).Plan_cost.total }

type semijoin_order = Source_order | By_confirmation

(* Rebuild a round-shaped plan with selection queries first and pruned,
   chained semijoin sets (Figure 5(c)). [rank] orders each round's
   semijoin targets (smaller first). *)
let build_pruned ~rank rounds_list =
  let ops = ref [] in
  let emit op = ops := op :: !ops in
  let round_var r = Builder.round_var r in
  List.iteri
    (fun idx { Plan.cond; actions } ->
      let r = idx + 1 in
      let selects = ref [] and semijoins = ref [] in
      Array.iteri
        (fun j a ->
          if a = Plan.By_select then selects := j :: !selects
          else semijoins := j :: !semijoins)
        actions;
      let selects = List.rev !selects in
      let semijoins =
        List.sort
          (fun j1 j2 -> compare (rank cond j1) (rank cond j2))
          (List.rev !semijoins)
      in
      let dsts = ref [] in
      List.iter
        (fun j ->
          let dst = Builder.var r j in
          dsts := dst :: !dsts;
          emit (Op.Select { dst; cond; source = j }))
        selects;
      if r = 1 then emit (Op.Union { dst = round_var 1; args = List.rev !dsts })
      else begin
        (* Current pruned candidate set; starts as X_{r-1} minus the
           items the selection queries already confirmed. *)
        let current = ref (round_var (r - 1)) in
        let steps = ref 0 in
        let subtract var =
          incr steps;
          let dst = Printf.sprintf "D%d_%d" r !steps in
          emit (Op.Diff { dst; left = !current; right = var });
          current := dst
        in
        if semijoins <> [] && selects <> [] then begin
          let sel_union = Printf.sprintf "S%d" r in
          emit (Op.Union { dst = sel_union; args = List.rev !dsts });
          subtract sel_union
        end;
        List.iteri
          (fun k j ->
            let dst = Builder.var r j in
            dsts := dst :: !dsts;
            emit (Op.Semijoin { dst; cond; source = j; input = !current });
            if k < List.length semijoins - 1 then subtract dst)
          semijoins;
        emit (Op.Union { dst = Printf.sprintf "U%d" r; args = List.rev !dsts });
        emit
          (Op.Inter { dst = round_var r; args = [ round_var (r - 1); Printf.sprintf "U%d" r ] })
      end)
    rounds_list;
  Plan.create ~ops:(List.rev !ops) ~output:(round_var (List.length rounds_list))

let prune_with_difference ?(order = Source_order) (env : Opt_env.t)
    (optimized : Optimized.t) =
  match Plan.rounds ~n:(Opt_env.n env) optimized.Optimized.plan with
  | Error _ -> optimized
  | Ok rounds_list ->
    let has_semijoin =
      List.exists
        (fun r -> Array.exists (fun a -> a = Plan.By_semijoin) r.Plan.actions)
        rounds_list
    in
    if not has_semijoin then reprice env optimized
    else
      let rank cond j =
        match order with
        | Source_order -> float_of_int j
        | By_confirmation ->
          (* Most-confirming source first: larger matching counts
             earlier means later semijoin sets shrink faster. *)
          -.Fusion_cost.Estimator.matching env.Opt_env.est env.Opt_env.sources.(j)
              env.Opt_env.conds.(cond)
      in
      let plan = build_pruned ~rank rounds_list in
      let cost = (plan_estimate env plan).Plan_cost.total in
      let current = reprice env optimized in
      if cost <= current.Optimized.est_cost then
        { current with Optimized.plan; est_cost = cost }
      else current

(* Replace all queries on [source] by a load and local computation. *)
let load_one source_index plan =
  let load_var = Printf.sprintf "L%d" (source_index + 1) in
  let rewritten =
    List.concat_map
      (fun (op : Op.t) ->
        match op with
        | Select { dst; cond; source } when source = source_index ->
          [ Op.Local_select { dst; cond; input = load_var } ]
        | Semijoin { dst; cond; source; input } when source = source_index ->
          let tmp = dst ^ "_t" in
          [ Op.Local_select { dst = tmp; cond; input = load_var };
            Op.Inter { dst; args = [ tmp; input ] } ]
        | other -> [ other ])
      (Plan.ops plan)
  in
  Plan.create
    ~ops:(Op.Load { dst = load_var; source = source_index } :: rewritten)
    ~output:(Plan.output plan)

let load_sources (env : Opt_env.t) (optimized : Optimized.t) =
  let n = Opt_env.n env in
  let model = env.model in
  let rec improve plan cost =
    let estimate = plan_estimate env plan in
    let per_source = Array.make n 0.0 in
    List.iteri
      (fun i (op : Op.t) ->
        match op with
        | Select { source; _ } | Semijoin { source; _ } | Load { source; _ } ->
          per_source.(source) <- per_source.(source) +. estimate.Plan_cost.op_costs.(i)
        | _ -> ())
      (Plan.ops plan);
    (* Load the source with the largest saving, then reconsider: loading
       one source changes nothing for the others, but keeping the loop
       makes the decision robust to future cost models. *)
    let best = ref None in
    for j = 0 to n - 1 do
      let already_loaded =
        List.exists
          (fun (op : Op.t) -> match op with Op.Load { source; _ } -> source = j | _ -> false)
          (Plan.ops plan)
      in
      if (not already_loaded) && per_source.(j) > 0.0 then begin
        let saving = per_source.(j) -. model.Fusion_cost.Model.lq_cost env.sources.(j) in
        match !best with
        | Some (s, _) when s >= saving -> ()
        | _ -> if saving > 0.0 then best := Some (saving, j)
      end
    done;
    match !best with
    | None -> (plan, cost)
    | Some (_, j) ->
      let plan' = load_one j plan in
      let cost' = (plan_estimate env plan').Plan_cost.total in
      if cost' < cost then improve plan' cost' else (plan, cost)
  in
  let start = reprice env optimized in
  let plan, est_cost = improve start.Optimized.plan start.Optimized.est_cost in
  { start with Optimized.plan; est_cost }

module Trace = Fusion_obs.Trace

(* The SJA search enumerates every condition ordering. *)
let orderings_considered m =
  let rec fact n = if n <= 1 then 1 else n * fact (n - 1) in
  fact m

let sja_plus ?order env =
  let base =
    Trace.span Trace.Postopt "sja" (fun ctx ->
        let base = Algorithms.sja env in
        if Trace.active ctx then
          Trace.attrs ctx
            [
              ("candidates", Trace.Int (orderings_considered (Opt_env.m env)));
              ("est_cost", Trace.Float base.Optimized.est_cost);
            ];
        base)
  in
  let pruned =
    Trace.span Trace.Postopt "prune_with_difference" (fun ctx ->
        let pruned = prune_with_difference ?order env base in
        if Trace.active ctx then
          Trace.attrs ctx
            [
              ("est_cost", Trace.Float pruned.Optimized.est_cost);
              ( "semijoins",
                Trace.Int
                  (List.length
                     (List.filter
                        (fun (op : Op.t) ->
                          match op with Op.Semijoin _ -> true | _ -> false)
                        (Plan.ops pruned.Optimized.plan))) );
            ];
        pruned)
  in
  Trace.span Trace.Postopt "load_sources" (fun ctx ->
      let final = load_sources env pruned in
      if Trace.active ctx then
        Trace.attrs ctx
          [
            ("est_cost", Trace.Float final.Optimized.est_cost);
            ( "loads",
              Trace.Int
                (List.length
                   (List.filter
                      (fun (op : Op.t) -> match op with Op.Load _ -> true | _ -> false)
                      (Plan.ops final.Optimized.plan))) );
          ];
      final)
