type algo = Filter | Sj | Sja | Sja_plus | Greedy_sj | Greedy_sja | Sja_bb | Hill_climb

let all = [ Filter; Sj; Sja; Sja_plus; Greedy_sj; Greedy_sja; Sja_bb; Hill_climb ]

let name = function
  | Filter -> "filter"
  | Sj -> "sj"
  | Sja -> "sja"
  | Sja_plus -> "sja+"
  | Greedy_sj -> "greedy-sj"
  | Greedy_sja -> "greedy-sja"
  | Sja_bb -> "sja-bb"
  | Hill_climb -> "hill-climb"

let of_name s =
  match String.lowercase_ascii s with
  | "filter" -> Ok Filter
  | "sj" -> Ok Sj
  | "sja" -> Ok Sja
  | "sja+" | "sjaplus" | "sja-plus" -> Ok Sja_plus
  | "greedy-sj" | "greedysj" -> Ok Greedy_sj
  | "greedy-sja" | "greedysja" -> Ok Greedy_sja
  | "sja-bb" | "sjabb" | "bb" -> Ok Sja_bb
  | "hill-climb" | "hillclimb" | "hill" -> Ok Hill_climb
  | other ->
    Error
      (Printf.sprintf "unknown algorithm %S (expected %s)" other
         (String.concat ", " (List.map name all)))

module Trace = Fusion_obs.Trace

let optimize algo env =
  Trace.span Trace.Optimize (name algo) (fun ctx ->
      let optimized =
        match algo with
        | Filter -> Algorithms.filter env
        | Sj -> Algorithms.sj env
        | Sja -> Algorithms.sja env
        | Sja_plus -> Postopt.sja_plus env
        | Greedy_sj -> Algorithms.greedy_sj env
        | Greedy_sja -> Algorithms.greedy_sja env
        | Sja_bb -> Branch_bound.sja_bb env
        | Hill_climb -> Iterative.sja_hill_climb env
      in
      if Trace.active ctx then
        Trace.attrs ctx
          [
            ("algo", Trace.Str (name algo));
            ("conds", Trace.Int (Opt_env.m env));
            ("sources", Trace.Int (Opt_env.n env));
            ( "plan_ops",
              Trace.Int (List.length (Fusion_plan.Plan.ops optimized.Optimized.plan)) );
            ("est_cost", Trace.Float optimized.Optimized.est_cost);
          ];
      optimized)
