(** In-memory relations, stored struct-of-arrays.

    A relation is the unit of data exported by a source wrapper
    (Section 2.1). Storage is columnar: each attribute is a flat [int]
    array of dictionary ids plus a null bitmap. The merge column is
    encoded through the relation's catalog scope ({!Intern.global} by
    default) so its ids line up with {!Item_set} and the probe index;
    every other column has a private per-column dictionary, keeping the
    catalog scope dense. The probe index maps item {e ids} to tuple
    positions, so semijoin probes are int-keyed hash hits proportional
    to the probe set rather than the relation.

    Rows ({!Tuple.t}) are materialized on demand from the dictionaries;
    because one column holds values of one type, materialized rows
    round-trip the exact values inserted (merge columns inherit the
    catalog scope's representative-spelling caveat, the same one
    {!Item_set} values already have). *)

type t

val create : name:string -> ?intern:Intern.t -> Schema.t -> t

val of_tuples : name:string -> ?intern:Intern.t -> Schema.t -> Tuple.t list -> t

val of_rows :
  name:string -> ?intern:Intern.t -> Schema.t -> Value.t list list -> (t, string) result
(** Builds the relation from raw rows, type-checking each against the
    schema. *)

val name : t -> string
val schema : t -> Schema.t

val intern : t -> Intern.t
(** The dictionary scope the relation's items are encoded in. *)

val cardinality : t -> int

val insert : t -> Tuple.t -> unit

val remove : t -> Tuple.t -> bool
(** Removes one tuple equal to the argument (by {!Tuple.equal}), if any;
    returns whether a tuple was removed. O(1) in the relation size plus
    the affected index entries: the last row is swapped into the freed
    slot, so after a remove {!tuples} and {!tuples_of_item} no longer
    enumerate in insertion order. Bumps {!version} when it removes. *)

val version : t -> int
(** Bumped on every {!insert} and successful {!remove}; lets derived
    artifacts (statistics, caches, maintained answers) detect
    staleness. *)

val iter : (Tuple.t -> unit) -> t -> unit
val fold : ('a -> Tuple.t -> 'a) -> 'a -> t -> 'a

val row : t -> int -> Tuple.t
(** Materializes the tuple at a position in [0, cardinality). Positions
    are unstable across {!remove} (swap-with-last). *)

val to_array : t -> Tuple.t array
(** All tuples in position order; one array allocation plus one tuple
    per row, no intermediate list. *)

val tuples : t -> Tuple.t list

val items : t -> Item_set.t
(** Distinct merge-attribute values appearing in the relation. *)

val distinct_item_count : t -> int

val tuples_of_item : t -> Value.t -> Tuple.t list
(** All tuples whose merge attribute equals the given item, in
    insertion order; O(1) lookup plus output size. *)

val select_items : t -> (Tuple.t -> bool) -> Item_set.t
(** [select_items r p] is the set of items having at least one tuple
    satisfying [p] — the semantics of a selection query [sq(c, R)].
    Row-materializing; {!Cond_vec} in [lib/cond] is the columnar fast
    path. *)

val semijoin_items : t -> (Tuple.t -> bool) -> Item_set.t -> Item_set.t
(** [semijoin_items r p xs] is the subset of [xs] whose items have a
    tuple in [r] satisfying [p] — the semantics of [sjq(c, R, X)].
    Runs in O(|xs| · tuples-per-item), using the merge index. *)

val select_tuples : t -> (Tuple.t -> bool) -> Tuple.t list

val count_matching : t -> (Tuple.t -> bool) -> int
(** Number of distinct items with a matching tuple. *)

(** {2 Columnar internals}

    Read-only views of the column plane for compiled scans
    ([Cond_vec]). The returned arrays are the live backing stores: only
    indices below {!cardinality} are meaningful, callers must not
    mutate them, and array {e identity} changes when the relation
    grows — re-fetch after any insert. *)

val merge_pos : t -> int
val arity : t -> int

val column_table : t -> int -> Intern.t
(** Dictionary of the column at an attribute position. For the merge
    position this is {!intern}; other columns use a private
    per-relation, per-column table. *)

val column_ids : t -> int -> int array
(** Dictionary ids of the column, row-indexed. *)

val column_null_words : t -> int -> int array
(** Null bitmap of the column, [Sys.int_size] rows per word, row [r] at
    word [r / Sys.int_size], bit [r mod Sys.int_size]. *)

val null_at : t -> int -> int -> bool
(** [null_at t attr row] — whether the cell is [Null]. *)

val value_at : t -> int -> int -> Value.t
(** [value_at t attr row] — the representative value of the cell's
    dictionary class (no tuple materialization). *)

val positions_of_id : t -> Intern.id -> int list
(** Probe-index positions of an item id, newest first; [[]] when the id
    has no tuples. *)

val pp : Format.formatter -> t -> unit
