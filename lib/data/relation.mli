(** In-memory relations.

    A relation is the unit of data exported by a source wrapper
    (Section 2.1). Merge-attribute values are dictionary-encoded through
    an {!Intern} table (the relation's scope; {!Intern.global} by
    default), and the probe index maps item {e ids} to tuple positions,
    so semijoin probes are int-keyed hash hits proportional to the probe
    set rather than the relation. *)

type t

val create : name:string -> ?intern:Intern.t -> Schema.t -> t

val of_tuples : name:string -> ?intern:Intern.t -> Schema.t -> Tuple.t list -> t

val of_rows :
  name:string -> ?intern:Intern.t -> Schema.t -> Value.t list list -> (t, string) result
(** Builds the relation from raw rows, type-checking each against the
    schema. *)

val name : t -> string
val schema : t -> Schema.t

val intern : t -> Intern.t
(** The dictionary scope the relation's items are encoded in. *)

val cardinality : t -> int

val insert : t -> Tuple.t -> unit

val remove : t -> Tuple.t -> bool
(** Removes one tuple equal to the argument (by {!Tuple.equal}), if any;
    returns whether a tuple was removed. O(1) in the relation size plus
    the affected index entries: the last row is swapped into the freed
    slot, so after a remove {!tuples} and {!tuples_of_item} no longer
    enumerate in insertion order. Bumps {!version} when it removes. *)

val version : t -> int
(** Bumped on every {!insert} and successful {!remove}; lets derived
    artifacts (statistics, caches, maintained answers) detect
    staleness. *)

val iter : (Tuple.t -> unit) -> t -> unit
val fold : ('a -> Tuple.t -> 'a) -> 'a -> t -> 'a
val tuples : t -> Tuple.t list

val items : t -> Item_set.t
(** Distinct merge-attribute values appearing in the relation. *)

val distinct_item_count : t -> int

val tuples_of_item : t -> Value.t -> Tuple.t list
(** All tuples whose merge attribute equals the given item, in
    insertion order; O(1) lookup plus output size. *)

val select_items : t -> (Tuple.t -> bool) -> Item_set.t
(** [select_items r p] is the set of items having at least one tuple
    satisfying [p] — the semantics of a selection query [sq(c, R)]. *)

val semijoin_items : t -> (Tuple.t -> bool) -> Item_set.t -> Item_set.t
(** [semijoin_items r p xs] is the subset of [xs] whose items have a
    tuple in [r] satisfying [p] — the semantics of [sjq(c, R, X)].
    Runs in O(|xs| · tuples-per-item), using the merge index. *)

val select_tuples : t -> (Tuple.t -> bool) -> Tuple.t list

val count_matching : t -> (Tuple.t -> bool) -> int
(** Number of distinct items with a matching tuple. *)

val pp : Format.formatter -> t -> unit
