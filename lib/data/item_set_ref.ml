(* The original [Item_set] implementation over [Set.Make (Value)],
   kept verbatim as the reference semantics for the flat
   dictionary-encoded implementation. The equivalence property tests
   (test/test_intern.ml) replay randomized operation sequences against
   both and require identical observable behavior. *)

module S = Set.Make (struct
  type t = Value.t

  let compare = Value.compare
end)

type t = S.t

let empty = S.empty
let is_empty = S.is_empty
let singleton = S.singleton
let mem = S.mem
let add = S.add
let cardinal = S.cardinal
let union = S.union
let inter = S.inter
let diff = S.diff
let sym_diff a b = S.union (S.diff a b) (S.diff b a)
let subset = S.subset
let equal = S.equal
let compare = S.compare
let union_list sets = List.fold_left S.union S.empty sets

let inter_list = function
  | [] -> S.empty
  | first :: rest -> List.fold_left S.inter first rest

let of_list = S.of_list
let to_list = S.elements
let iter = S.iter
let fold = S.fold
let filter = S.filter

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Value.pp)
    (to_list s)
