(** The pre-columnar boxed-row implementation of relations, kept as the
    reference for equivalence testing of the struct-of-arrays
    {!Relation} (the {!Item_set_ref} pattern). Same observable
    semantics: row-array storage, id-keyed probe index, swap-with-last
    deletes. Not used on any execution path. *)

type t

val create : name:string -> ?intern:Intern.t -> Schema.t -> t
val of_tuples : name:string -> ?intern:Intern.t -> Schema.t -> Tuple.t list -> t
val name : t -> string
val schema : t -> Schema.t
val intern : t -> Intern.t
val cardinality : t -> int
val insert : t -> Tuple.t -> unit
val remove : t -> Tuple.t -> bool
val version : t -> int
val iter : (Tuple.t -> unit) -> t -> unit
val fold : ('a -> Tuple.t -> 'a) -> 'a -> t -> 'a
val tuples : t -> Tuple.t list
val items : t -> Item_set.t
val distinct_item_count : t -> int
val tuples_of_item : t -> Value.t -> Tuple.t list
val select_items : t -> (Tuple.t -> bool) -> Item_set.t
val semijoin_items : t -> (Tuple.t -> bool) -> Item_set.t -> Item_set.t
val select_tuples : t -> (Tuple.t -> bool) -> Tuple.t list
val count_matching : t -> (Tuple.t -> bool) -> int
