(** Dictionary encoding for merge-attribute values.

    An intern table is an append-only bijection between {!Value.t}
    equality classes and dense non-negative integer ids. Sets of items
    ({!Item_set}) and the relation probe index ({!Relation}) work on
    ids instead of boxed values, which turns set algebra into flat
    integer-array kernels and probe lookups into int-keyed hash hits.

    Equality classes follow {!Value.equal}: [Int 1] and [Float 1.0]
    intern to the {e same} id (the table keeps whichever spelling it saw
    first as the representative), so dictionary encoding cannot change
    which values the mediator considers equal. {!Value.hash} is
    consistent with [Value.equal], which is what makes this table
    well-defined.

    Scoping: every table is independent — ids from different tables are
    not comparable. [Source.Catalog] builds its sources against one
    table (its "catalog scope"); {!global} is the default scope used
    when none is supplied, so code that never mentions tables keeps
    working and interoperates. *)

type id = int
(** A dictionary id; dense, starting at 0, never reused. *)

type t

val create : ?name:string -> unit -> t
(** A fresh, empty table. [name] is only used in {!pp} and error
    messages. *)

val global : t
(** The process-wide default table. Relations, item sets and caches
    built without an explicit table share this scope. *)

val name : t -> string

val size : t -> int
(** Number of distinct equality classes interned so far (= the next
    fresh id). *)

val intern : t -> Value.t -> id
(** The id of [v]'s equality class, allocating a fresh one on first
    sight. O(1) amortized. *)

val find : t -> Value.t -> id option
(** Like {!intern} but never allocates an id: [None] when the class has
    not been seen. *)

val value : t -> id -> Value.t
(** The representative value of an id (the first spelling interned).
    @raise Invalid_argument if the id was not allocated by this
    table. *)

val iter : (id -> Value.t -> unit) -> t -> unit
(** All (id, representative) pairs in increasing id order. *)

val pp : Format.formatter -> t -> unit
