type id = int

(* Hash values with [Value.hash], which is consistent with
   [Value.equal] across the Int/Float numeric bridge. *)
module VH = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

type t = {
  name : string;
  ids : id VH.t; (* equality class -> id *)
  mutable values : Value.t array; (* id -> representative *)
  mutable used : int;
}

let create ?(name = "intern") () =
  { name; ids = VH.create 256; values = Array.make 64 Value.Null; used = 0 }

let global = create ~name:"global" ()

let name t = t.name
let size t = t.used

let intern t v =
  match VH.find_opt t.ids v with
  | Some id -> id
  | None ->
    let id = t.used in
    if id = Array.length t.values then begin
      let values = Array.make (2 * id) Value.Null in
      Array.blit t.values 0 values 0 id;
      t.values <- values
    end;
    t.values.(id) <- v;
    t.used <- id + 1;
    VH.add t.ids v id;
    id

let find t v = VH.find_opt t.ids v

let value t id =
  if id < 0 || id >= t.used then
    invalid_arg
      (Printf.sprintf "Intern.value: id %d not allocated by table %s (size %d)" id t.name
         t.used);
  t.values.(id)

let iter f t =
  for id = 0 to t.used - 1 do
    f id t.values.(id)
  done

let pp ppf t = Format.fprintf ppf "<intern %s: %d values>" t.name t.used
