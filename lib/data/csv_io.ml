(* Split a line on commas, honoring "..." quoting: a quoted field keeps
   commas and leading/trailing whitespace verbatim, and a doubled quote
   inside one is a literal quote. Returns each field with a flag saying
   whether it was quoted — the row parser needs it to tell the empty
   string from NULL. Unquoted fields are trimmed, as before. *)
let split_fields line =
  let fields = ref [] in
  let buffer = Buffer.create 16 in
  let quoted = ref false in
  let in_quotes = ref false in
  let n = String.length line in
  let flush () =
    let raw = Buffer.contents buffer in
    fields := (if !quoted then (raw, true) else (String.trim raw, false)) :: !fields;
    Buffer.clear buffer;
    quoted := false
  in
  let i = ref 0 in
  while !i < n do
    (let c = line.[!i] in
     if !in_quotes then
       if c = '"' then
         if !i + 1 < n && line.[!i + 1] = '"' then begin
           Buffer.add_char buffer '"';
           incr i
         end
         else in_quotes := false
       else Buffer.add_char buffer c
     else
       match c with
       | '"' when String.trim (Buffer.contents buffer) = "" ->
         (* An opening quote (nothing but whitespace before it). *)
         Buffer.clear buffer;
         in_quotes := true;
         quoted := true
       | ',' -> flush ()
       | c -> Buffer.add_char buffer c);
    incr i
  done;
  flush ();
  List.rev !fields

let parse_header line =
  let fields = List.map fst (split_fields line) in
  let merge = ref None in
  let rec go acc = function
    | [] -> (
      match !merge with
      | None -> Error "no merge attribute (mark one field with a leading '*')"
      | Some m -> Ok (m, List.rev acc))
    | field :: rest -> (
      let starred = String.length field > 0 && field.[0] = '*' in
      let field = if starred then String.sub field 1 (String.length field - 1) else field in
      match String.index_opt field ':' with
      | None -> Error (Printf.sprintf "header field %S lacks a ':type' suffix" field)
      | Some i -> (
        let name = String.sub field 0 i in
        let ty_str = String.sub field (i + 1) (String.length field - i - 1) in
        match Value.ty_of_string ty_str with
        | Error msg -> Error msg
        | Ok ty ->
          if starred then merge := Some name;
          go ((name, ty) :: acc) rest))
  in
  go [] fields

let schema_of_header line =
  match parse_header line with
  | Error msg -> Error msg
  | Ok (merge, attrs) -> Schema.create ~merge attrs

let read_string ~name ?intern text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | [] -> Error "empty input"
  | header :: rows -> (
    match parse_header header with
    | Error msg -> Error ("header: " ^ msg)
    | Ok (merge, attrs) -> (
      match Schema.create ~merge attrs with
      | Error msg -> Error msg
      | Ok schema ->
        let tys = List.map snd attrs in
        let parse_row line =
          let fields = split_fields line in
          if List.length fields <> List.length tys then
            Error (Printf.sprintf "row %S: wrong field count" line)
          else
            let rec go acc fs ts =
              match fs, ts with
              | [], [] -> Ok (List.rev acc)
              | (f, was_quoted) :: fs, ty :: ts -> (
                (* A quoted string field is taken verbatim: unlike
                   {!Value.parse}, quoting preserves whitespace and lets
                   [""] and ["NULL"] mean the literal strings rather
                   than a null. *)
                if was_quoted && ty = Value.Tstring then
                  go (Value.String f :: acc) fs ts
                else
                  match Value.parse ty f with
                  | Ok v -> go (v :: acc) fs ts
                  | Error msg -> Error msg)
              | _ -> assert false
            in
            go [] fields tys
        in
        let rec rows_of acc = function
          | [] -> Ok (List.rev acc)
          | line :: rest -> (
            match parse_row line with
            | Ok row -> rows_of (row :: acc) rest
            | Error _ as e -> e)
        in
        match rows_of [] rows with
        | Error msg -> Error msg
        | Ok rows -> Relation.of_rows ~name ?intern schema rows))

let read_file ~name ?intern path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> read_string ~name ?intern text
  | exception Sys_error msg -> Error msg

(* Quote a string field whenever parsing it back unquoted would change
   it: separators and quotes, whitespace that trimming would eat, and
   the [""] / ["NULL"] spellings of null. Embedded newlines still can't
   round-trip (the reader is line-based), so they get quoted here but
   rejected on read. A null stays a bare empty field. *)
let needs_quoting s =
  s = "" || s = "NULL" || s <> String.trim s
  || String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let quote_field s =
  let buffer = Buffer.create (String.length s + 2) in
  Buffer.add_char buffer '"';
  String.iter
    (fun c ->
      if c = '"' then Buffer.add_string buffer "\"\""
      else Buffer.add_char buffer c)
    s;
  Buffer.add_char buffer '"';
  Buffer.contents buffer

let value_to_field = function
  | Value.Null -> ""
  | Value.Bool b -> string_of_bool b
  | Value.Int i -> string_of_int i
  | Value.Float f -> Printf.sprintf "%g" f
  | Value.String s -> if needs_quoting s then quote_field s else s

let write_string relation =
  let schema = Relation.schema relation in
  let merge = Schema.merge schema in
  let buffer = Buffer.create 1024 in
  let header =
    Schema.attrs schema
    |> List.map (fun (name, ty) ->
           Printf.sprintf "%s%s:%s"
             (if name = merge then "*" else "")
             name (Value.ty_to_string ty))
    |> String.concat ","
  in
  Buffer.add_string buffer header;
  Buffer.add_char buffer '\n';
  Relation.iter
    (fun tuple ->
      let fields = Array.to_list tuple |> List.map value_to_field in
      Buffer.add_string buffer (String.concat "," fields);
      Buffer.add_char buffer '\n')
    relation;
  Buffer.contents buffer

let write_file relation path =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (write_string relation))
