(* Struct-of-arrays relation: one dictionary-encoded id column per
   attribute plus a null bitmap per column. The merge column is encoded
   in the relation's catalog scope [intern] (so ids line up with
   [Item_set] and the probe index); every other column gets a private
   per-column dictionary, which keeps the catalog scope dense and makes
   materialized rows round-trip exactly (one column holds one type, so
   an equality class never has two spellings). *)

let bpw = Sys.int_size

type col = {
  tbl : Intern.t;
  mutable ids : int array; (* dictionary ids, row-indexed; valid below [used] *)
  mutable nulls : int array; (* bitmap: bit r set iff row r is Null *)
}

type t = {
  name : string;
  schema : Schema.t;
  intern : Intern.t;
  cols : col array;
  merge_pos : int;
  mutable used : int;
  mutable capacity : int;
  mutable version : int;
  index : (Intern.id, int list) Hashtbl.t; (* item id -> row positions, newest first *)
}

let create ~name ?(intern = Intern.global) schema =
  let merge_pos = Schema.merge_pos schema in
  let attr_names = Array.of_list (List.map fst (Schema.attrs schema)) in
  let cols =
    Array.init (Schema.arity schema) (fun a ->
        let tbl =
          if a = merge_pos then intern
          else Intern.create ~name:(Printf.sprintf "%s.%s" name attr_names.(a)) ()
        in
        { tbl; ids = [||]; nulls = [||] })
  in
  {
    name;
    schema;
    intern;
    cols;
    merge_pos;
    used = 0;
    capacity = 0;
    version = 0;
    index = Hashtbl.create 64;
  }

let version t = t.version
let name t = t.name
let schema t = t.schema
let intern t = t.intern
let cardinality t = t.used
let merge_pos t = t.merge_pos
let arity t = Array.length t.cols
let column_table t a = t.cols.(a).tbl
let column_ids t a = t.cols.(a).ids
let column_null_words t a = t.cols.(a).nulls

let null_at t a i =
  let c = t.cols.(a) in
  c.nulls.(i / bpw) land (1 lsl (i mod bpw)) <> 0

let positions_of_id t id = Option.value ~default:[] (Hashtbl.find_opt t.index id)

let words_for capacity = (capacity + bpw - 1) / bpw

let ensure_capacity t =
  if t.used = t.capacity then begin
    let capacity = max 16 (2 * t.capacity) in
    let nwords = words_for capacity in
    Array.iter
      (fun c ->
        let ids = Array.make capacity 0 in
        Array.blit c.ids 0 ids 0 t.used;
        c.ids <- ids;
        let nulls = Array.make nwords 0 in
        Array.blit c.nulls 0 nulls 0 (Array.length c.nulls);
        c.nulls <- nulls)
      t.cols;
    t.capacity <- capacity
  end

let set_null c i yes =
  let w = i / bpw and bit = 1 lsl (i mod bpw) in
  if yes then c.nulls.(w) <- c.nulls.(w) lor bit
  else c.nulls.(w) <- c.nulls.(w) land lnot bit

let insert t tuple =
  ensure_capacity t;
  let pos = t.used in
  Array.iteri
    (fun a c ->
      let v = Tuple.get tuple a in
      c.ids.(pos) <- Intern.intern c.tbl v;
      set_null c pos (v = Value.Null))
    t.cols;
  let item = t.cols.(t.merge_pos).ids.(pos) in
  let existing = positions_of_id t item in
  Hashtbl.replace t.index item (pos :: existing);
  t.used <- pos + 1;
  t.version <- t.version + 1

(* Dictionary ids are in bijection with [Value.equal] classes, so a row
   equals [tuple] iff every column id equals the id of the corresponding
   tuple slot. [Intern.find] keeps the probe allocation-free: a value
   absent from a column's dictionary cannot appear in that column. *)
let row_ids_of_tuple t tuple =
  let arity = Array.length t.cols in
  let out = Array.make arity 0 in
  let rec go a =
    if a = arity then Some out
    else
      match Intern.find t.cols.(a).tbl (Tuple.get tuple a) with
      | None -> None
      | Some id ->
        out.(a) <- id;
        go (a + 1)
  in
  go 0

let row_matches_ids t tids pos =
  let arity = Array.length t.cols in
  let rec go a = a = arity || (t.cols.(a).ids.(pos) = tids.(a) && go (a + 1)) in
  go 0

(* Delete by swapping the last row into the freed slot: O(1) in the
   relation size, O(tuples-per-item) in the two affected index entries.
   After a remove, position lists no longer reflect insertion order. *)
let remove t tuple =
  match row_ids_of_tuple t tuple with
  | None -> false
  | Some tids -> (
    let id = tids.(t.merge_pos) in
    match Hashtbl.find_opt t.index id with
    | None -> false
    | Some positions -> (
      match List.find_opt (row_matches_ids t tids) positions with
      | None -> false
      | Some pos ->
        let last = t.used - 1 in
        let remaining = List.filter (fun i -> i <> pos) positions in
        let replace id = function
          | [] -> Hashtbl.remove t.index id
          | l -> Hashtbl.replace t.index id l
        in
        if pos = last then replace id remaining
        else begin
          Array.iter
            (fun c ->
              c.ids.(pos) <- c.ids.(last);
              set_null c pos (c.nulls.(last / bpw) land (1 lsl (last mod bpw)) <> 0))
            t.cols;
          let fix l = List.map (fun i -> if i = last then pos else i) l in
          let mid = t.cols.(t.merge_pos).ids.(pos) in
          if mid = id then replace id (fix remaining)
          else begin
            replace id remaining;
            match Hashtbl.find_opt t.index mid with
            | Some l -> Hashtbl.replace t.index mid (fix l)
            | None -> assert false
          end
        end;
        t.used <- last;
        t.version <- t.version + 1;
        true))

let of_tuples ~name ?intern schema tuples =
  let t = create ~name ?intern schema in
  List.iter (insert t) tuples;
  t

let of_rows ~name ?intern schema rows =
  let t = create ~name ?intern schema in
  let rec go = function
    | [] -> Ok t
    | row :: rest -> (
      match Tuple.create schema row with
      | Ok tuple ->
        insert t tuple;
        go rest
      | Error msg -> Error (Printf.sprintf "%s (row %d)" msg (cardinality t + 1)))
  in
  go rows

let value_at t a i = Intern.value t.cols.(a).tbl t.cols.(a).ids.(i)

let row t i =
  if i < 0 || i >= t.used then invalid_arg "Relation.row";
  Array.init (Array.length t.cols) (fun a -> value_at t a i)

let iter f t =
  for i = 0 to t.used - 1 do
    f (row t i)
  done

let fold f init t =
  let acc = ref init in
  iter (fun tuple -> acc := f !acc tuple) t;
  !acc

let to_array t = Array.init t.used (row t)

let tuples t = List.rev (fold (fun acc tu -> tu :: acc) [] t)

let ids_of_index t keep =
  let out = Array.make (Hashtbl.length t.index) 0 in
  let k = ref 0 in
  Hashtbl.iter
    (fun id positions ->
      if keep id positions then begin
        out.(!k) <- id;
        incr k
      end)
    t.index;
  Item_set.of_ids t.intern (if !k = Array.length out then out else Array.sub out 0 !k)

let items t = ids_of_index t (fun _ _ -> true)

let distinct_item_count t = Hashtbl.length t.index

(* Positions are stored newest-first; rev_map restores insertion order. *)
let tuples_at t positions = List.rev_map (row t) positions

let tuples_of_item t item =
  match Intern.find t.intern item with
  | None -> []
  | Some id -> (
    match Hashtbl.find_opt t.index id with
    | None -> []
    | Some positions -> tuples_at t positions)

let select_items t p =
  ids_of_index t (fun _ positions -> List.exists (fun i -> p (row t i)) positions)

let semijoin_items t p xs =
  match Item_set.table xs with
  | Some tbl when tbl == t.intern ->
    (* Probe the int index directly, in id order. *)
    let kept =
      Item_set.fold_ids
        (fun id acc ->
          match Hashtbl.find_opt t.index id with
          | Some positions when List.exists (fun i -> p (row t i)) positions -> id :: acc
          | _ -> acc)
        xs []
    in
    Item_set.of_ids t.intern (Array.of_list (List.rev kept))
  | _ ->
    (* Cross-scope (or empty) probe: fall back to value-level lookups. *)
    Item_set.filter (fun item -> List.exists p (tuples_of_item t item)) xs

let select_tuples t p =
  let acc = ref [] in
  for i = t.used - 1 downto 0 do
    let tu = row t i in
    if p tu then acc := tu :: !acc
  done;
  !acc

let count_matching t p = Item_set.cardinal (select_items t p)

let pp ppf t =
  Format.fprintf ppf "@[<v2>%s%a [%d tuples]" t.name Schema.pp t.schema t.used;
  iter (fun tuple -> Format.fprintf ppf "@,%a" Tuple.pp tuple) t;
  Format.fprintf ppf "@]"
