(** Sets of items (merge-attribute values).

    These are the sets the mediator manipulates in simple plans: results
    of selection and semijoin queries, combined with union, intersection
    and (in postoptimized plans) difference.

    Internally a set is dictionary-encoded: elements are interned
    through an {!Intern} table and stored flat — as a sorted int array,
    or as a bitset when the id range is dense — so the set algebra runs
    as merge/bitwise kernels over unboxed ints. The observable behavior
    is identical to the previous [Set.Make (Value)] implementation
    (kept as {!Item_set_ref} for equivalence testing): iteration order
    is increasing {!Value.compare} order and membership follows
    {!Value.equal} equality classes.

    Sets constructed through the value-level API ({!of_list},
    {!singleton}, {!add} on {!empty}) live in the {!Intern.global}
    scope. Operations between sets from different scopes are supported
    (the right operand is re-interned into the left's table) but slower;
    keep one scope per catalog for the fast path. *)

type t

val empty : t
val is_empty : t -> bool
val singleton : Value.t -> t
val mem : Value.t -> t -> bool
val add : Value.t -> t -> t
val cardinal : t -> int
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

val sym_diff : t -> t -> t
(** Symmetric difference [(a − b) ∪ (b − a)] as one flat kernel: a
    single merge pass on sorted-id arrays, word-wise [lxor] on bitsets
    (with the same sparse-span fallback as {!union}). The delta plane
    uses it to turn two answer snapshots into a changed-items set. *)

val subset : t -> t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val union_list : t list -> t
(** Folds smallest-first so intermediate results stay as small as the
    operands allow. *)

val inter_list : t list -> t
(** [inter_list []] is {!empty}. Folds smallest-first and returns
    {!empty} as soon as an intermediate result is empty — in particular
    an empty operand short-circuits the whole fold without running any
    set kernel. *)

val of_list : Value.t list -> t
val to_list : t -> Value.t list
(** Elements in increasing {!Value.compare} order. *)

val iter : (Value.t -> unit) -> t -> unit
val fold : (Value.t -> 'a -> 'a) -> t -> 'a -> 'a
val filter : (Value.t -> bool) -> t -> t

val pp : Format.formatter -> t -> unit
(** Renders as [{v1, v2, ...}]. *)

(** {1 Dictionary-level interface}

    Used by {!Relation}'s probe index, the executor caches, and the
    kernel benchmarks. Ids are meaningful only relative to the set's
    intern table. *)

val table : t -> Intern.t option
(** The intern scope the set's ids belong to; [None] for {!empty}. *)

val of_list_in : Intern.t -> Value.t list -> t
(** [of_list] against an explicit intern scope. *)

val of_ids : Intern.t -> int array -> t
(** Build from ids previously allocated by the given table. Takes
    ownership of the array; sorts and deduplicates as needed (already
    strictly-increasing input is detected and used as-is). *)

val fold_ids : (Intern.id -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over ids in increasing {e id} order (not value order). *)

val fold_items : (Intern.id -> Value.t -> 'a -> 'a) -> t -> 'a -> 'a
(** Like {!fold} — increasing {!Value.compare} order — but also hands
    each element's id to the callback. *)

val hash : t -> int
(** Order-independent hash over the ids; equal sets in the same scope
    hash equal. Not stable across scopes or processes. *)

(** Introspection for tests and benchmarks. *)
module Debug : sig
  val kernel_calls : unit -> int
  (** Process-wide count of binary set kernels executed (union, inter,
      diff, subset on two non-empty operands). Monotonic; diff two
      readings around the region of interest. *)

  val repr : t -> string
  (** ["empty"], ["ids"] or ["bits"] — the current representation. *)
end
