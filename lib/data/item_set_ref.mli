(** The pre-dictionary [Set.Make (Value)] implementation of item sets,
    kept as the reference for equivalence testing of the flat
    {!Item_set}. Same interface, balanced-tree representation. Not used
    on any execution path. *)

type t

val empty : t
val is_empty : t -> bool
val singleton : Value.t -> t
val mem : Value.t -> t -> bool
val add : Value.t -> t -> t
val cardinal : t -> int
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val sym_diff : t -> t -> t
val subset : t -> t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val union_list : t list -> t
val inter_list : t list -> t
val of_list : Value.t list -> t

val to_list : t -> Value.t list
(** Elements in increasing {!Value.compare} order. *)

val iter : (Value.t -> unit) -> t -> unit
val fold : (Value.t -> 'a -> 'a) -> t -> 'a -> 'a
val filter : (Value.t -> bool) -> t -> t
val pp : Format.formatter -> t -> unit
