type t = {
  name : string;
  schema : Schema.t;
  intern : Intern.t;
  mutable rows : Tuple.t array;
  mutable used : int;
  mutable version : int;
  index : (Intern.id, int list) Hashtbl.t; (* item id -> row positions, newest first *)
}

let create ~name ?(intern = Intern.global) schema =
  {
    name;
    schema;
    intern;
    rows = [||];
    used = 0;
    version = 0;
    index = Hashtbl.create 64;
  }

let version t = t.version

let name t = t.name
let schema t = t.schema
let intern t = t.intern
let cardinality t = t.used

let ensure_capacity t =
  if t.used = Array.length t.rows then begin
    let capacity = max 16 (2 * Array.length t.rows) in
    let rows = Array.make capacity [||] in
    Array.blit t.rows 0 rows 0 t.used;
    t.rows <- rows
  end

let insert t tuple =
  ensure_capacity t;
  t.rows.(t.used) <- tuple;
  let item = Intern.intern t.intern (Tuple.item t.schema tuple) in
  let existing = Option.value ~default:[] (Hashtbl.find_opt t.index item) in
  Hashtbl.replace t.index item (t.used :: existing);
  t.used <- t.used + 1;
  t.version <- t.version + 1

(* Delete by swapping the last row into the freed slot: O(1) in the
   relation size, O(tuples-per-item) in the two affected index entries.
   After a remove, position lists no longer reflect insertion order. *)
let remove t tuple =
  let item = Tuple.item t.schema tuple in
  match Intern.find t.intern item with
  | None -> false
  | Some id -> (
    match Hashtbl.find_opt t.index id with
    | None -> false
    | Some positions -> (
      match List.find_opt (fun i -> Tuple.equal t.rows.(i) tuple) positions with
      | None -> false
      | Some pos ->
        let last = t.used - 1 in
        let remaining = List.filter (fun i -> i <> pos) positions in
        let replace id = function
          | [] -> Hashtbl.remove t.index id
          | l -> Hashtbl.replace t.index id l
        in
        if pos = last then replace id remaining
        else begin
          let moved = t.rows.(last) in
          t.rows.(pos) <- moved;
          let fix l = List.map (fun i -> if i = last then pos else i) l in
          let mid = Intern.intern t.intern (Tuple.item t.schema moved) in
          if mid = id then replace id (fix remaining)
          else begin
            replace id remaining;
            match Hashtbl.find_opt t.index mid with
            | Some l -> Hashtbl.replace t.index mid (fix l)
            | None -> assert false
          end
        end;
        t.rows.(last) <- [||];
        t.used <- last;
        t.version <- t.version + 1;
        true))

let of_tuples ~name ?intern schema tuples =
  let t = create ~name ?intern schema in
  List.iter (insert t) tuples;
  t

let iter f t =
  for i = 0 to t.used - 1 do
    f t.rows.(i)
  done

let fold f init t =
  let acc = ref init in
  iter (fun tuple -> acc := f !acc tuple) t;
  !acc

let tuples t = List.rev (fold (fun acc tu -> tu :: acc) [] t)

let ids_of_index t keep =
  let out = Array.make (Hashtbl.length t.index) 0 in
  let k = ref 0 in
  Hashtbl.iter
    (fun id positions ->
      if keep id positions then begin
        out.(!k) <- id;
        incr k
      end)
    t.index;
  Item_set.of_ids t.intern (if !k = Array.length out then out else Array.sub out 0 !k)

let items t = ids_of_index t (fun _ _ -> true)

let distinct_item_count t = Hashtbl.length t.index

(* Positions are stored newest-first; rev_map restores insertion order. *)
let tuples_at t positions = List.rev_map (fun i -> t.rows.(i)) positions

let tuples_of_item t item =
  match Intern.find t.intern item with
  | None -> []
  | Some id -> (
    match Hashtbl.find_opt t.index id with
    | None -> []
    | Some positions -> tuples_at t positions)

let select_items t p =
  ids_of_index t (fun _ positions -> List.exists (fun i -> p t.rows.(i)) positions)

let semijoin_items t p xs =
  match Item_set.table xs with
  | Some tbl when tbl == t.intern ->
    (* Probe the int index directly, in id order. *)
    let kept =
      Item_set.fold_ids
        (fun id acc ->
          match Hashtbl.find_opt t.index id with
          | Some positions when List.exists (fun i -> p t.rows.(i)) positions -> id :: acc
          | _ -> acc)
        xs []
    in
    Item_set.of_ids t.intern (Array.of_list (List.rev kept))
  | _ ->
    (* Cross-scope (or empty) probe: fall back to value-level lookups. *)
    Item_set.filter (fun item -> List.exists p (tuples_of_item t item)) xs

let select_tuples t p = List.filter p (tuples t)

let count_matching t p = Item_set.cardinal (select_items t p)
