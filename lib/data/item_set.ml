(* Flat, dictionary-encoded item sets.

   Items are interned through an {!Intern} table and a set is stored in
   one of two canonical flat forms over the resulting ids:

   - [Ids]: a strictly increasing int array. Union, intersection,
     difference and subset are merge kernels over the arrays (with a
     binary-search gallop when one side is much smaller).
   - [Bits]: a word-aligned bitset, used when the id range is dense
     ([card >= 64] and [span <= 8 * card]); the kernels become
     word-wise or/and/and-not.

   The representation is a function of the set alone (cardinality and
   exact id span), never of how it was computed, so equal sets always
   have identical structure and [equal] is a flat comparison.

   Observable behavior matches the historical [Set.Make (Value)]
   implementation (kept as {!Item_set_ref}): [to_list], [iter], [fold]
   and [pp] enumerate in increasing {!Value.compare} order, and
   membership follows [Value.equal] equality classes because the intern
   table does. The one caveat is representatives: where the AVL set kept
   the first element *added to that set* of an equality class (e.g.
   [Int 1] vs [Float 1.0]), interning keeps the first spelling the
   *table* ever saw. Schema-typed merge columns never mix spellings, so
   mediator answers are unchanged; the equivalence property tests pin
   this down.

   Sets built against different intern tables interoperate through a
   slow path that re-interns the right operand into the left table. *)

type bits = { base : int; words : int array; card : int }
(* [base] is a multiple of [bpw]; bit [j] of [words.(w)] is id
   [base + w * bpw + j]. First and last words are nonzero. *)

type t = Empty | Ids of Intern.t * int array | Bits of Intern.t * bits

let bpw = Sys.int_size (* usable bits per word *)
let bits_min_card = 64
let bits_max_spread = 8

(* A bitset is worthwhile when ids are dense: the span in bits stays
   within [bits_max_spread] times the cardinality (so the word array is
   at most card/8 words) and the set is big enough to amortize it. *)
let dense card span = card >= bits_min_card && span <= bits_max_spread * card

(* Kernel invocation counter, for tests that must prove an operation
   did no element-level work (e.g. inter_list short-circuiting). *)
let kernel_calls = ref 0
let kernel () = incr kernel_calls

let popcount w =
  let c = ref 0 and x = ref w in
  while !x <> 0 do
    x := !x land (!x - 1);
    incr c
  done;
  !c

let lsb_index w =
  let rec go j x = if x land 1 = 1 then j else go (j + 1) (x lsr 1) in
  go 0 w

let msb_index w =
  let rec go j x = if x = 1 then j else go (j + 1) (x lsr 1) in
  go 0 w

let ids_of_bits (b : bits) =
  let out = Array.make b.card 0 in
  let k = ref 0 in
  Array.iteri
    (fun w word ->
      let off = b.base + (w * bpw) in
      let x = ref word and j = ref 0 in
      while !x <> 0 do
        if !x land 1 = 1 then begin
          out.(!k) <- off + !j;
          incr k
        end;
        x := !x lsr 1;
        incr j
      done)
    b.words;
  out

let to_ids = function
  | Empty -> [||]
  | Ids (_, ids) -> ids
  | Bits (_, b) -> ids_of_bits b

let table = function Empty -> None | Ids (tbl, _) -> Some tbl | Bits (tbl, _) -> Some tbl

let tbl_exn = function
  | Empty -> invalid_arg "Item_set: empty set has no table"
  | Ids (tbl, _) | Bits (tbl, _) -> tbl

(* Build the canonical bitset for sorted distinct [ids] (known dense). *)
let make_bits tbl ids =
  let n = Array.length ids in
  let lo = ids.(0) and hi = ids.(n - 1) in
  let base = lo - (lo mod bpw) in
  let words = Array.make (((hi - base) / bpw) + 1) 0 in
  Array.iter
    (fun id ->
      let k = id - base in
      words.(k / bpw) <- words.(k / bpw) lor (1 lsl (k mod bpw)))
    ids;
  Bits (tbl, { base; words; card = n })

(* [ids] strictly increasing; picks the canonical representation. *)
let of_sorted_ids tbl ids =
  let n = Array.length ids in
  if n = 0 then Empty
  else if dense n (ids.(n - 1) - ids.(0) + 1) then make_bits tbl ids
  else Ids (tbl, ids)

(* Canonicalize a freshly computed word array: trim zero words, recount,
   and fall back to the array form when the result went sparse. *)
let norm_bits tbl base words =
  let n = Array.length words in
  let first = ref 0 in
  while !first < n && words.(!first) = 0 do
    incr first
  done;
  if !first = n then Empty
  else begin
    let last = ref (n - 1) in
    while words.(!last) = 0 do
      decr last
    done;
    let words =
      if !first = 0 && !last = n - 1 then words
      else Array.sub words !first (!last - !first + 1)
    in
    let base = base + (!first * bpw) in
    let card = Array.fold_left (fun acc w -> acc + popcount w) 0 words in
    let lo = base + lsb_index words.(0) in
    let hi = base + ((Array.length words - 1) * bpw) + msb_index words.(Array.length words - 1) in
    if dense card (hi - lo + 1) then Bits (tbl, { base; words; card })
    else Ids (tbl, ids_of_bits { base; words; card })
  end

(* Sort and deduplicate in place, skipping the sort when the input is
   already strictly increasing (the common case for ids collected in
   index order). Takes ownership of [ids]. *)
let sort_dedup ids =
  let n = Array.length ids in
  if n <= 1 then ids
  else begin
    let sorted = ref true in
    (try
       for i = 1 to n - 1 do
         if ids.(i - 1) >= ids.(i) then begin
           sorted := false;
           raise Exit
         end
       done
     with Exit -> ());
    if !sorted then ids
    else begin
      Array.sort (fun (a : int) b -> Stdlib.compare a b) ids;
      let k = ref 1 in
      for i = 1 to n - 1 do
        if ids.(i) <> ids.(!k - 1) then begin
          ids.(!k) <- ids.(i);
          incr k
        end
      done;
      if !k = n then ids else Array.sub ids 0 !k
    end
  end

let of_ids tbl ids = of_sorted_ids tbl (sort_dedup ids)

(* ---------- sorted-array kernels ---------- *)

let mem_sorted (arr : int array) x =
  let lo = ref 0 and hi = ref (Array.length arr - 1) and found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let v = arr.(mid) in
    if v = x then found := true else if v < x then lo := mid + 1 else hi := mid - 1
  done;
  !found

let merge_union (a : int array) (b : int array) =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make (la + lb) 0 in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < la && !j < lb do
    let x = a.(!i) and y = b.(!j) in
    if x < y then begin
      out.(!k) <- x;
      incr i
    end
    else if x > y then begin
      out.(!k) <- y;
      incr j
    end
    else begin
      out.(!k) <- x;
      incr i;
      incr j
    end;
    incr k
  done;
  while !i < la do
    out.(!k) <- a.(!i);
    incr i;
    incr k
  done;
  while !j < lb do
    out.(!k) <- b.(!j);
    incr j;
    incr k
  done;
  if !k = la + lb then out else Array.sub out 0 !k

let merge_inter (a : int array) (b : int array) =
  let a, b = if Array.length a <= Array.length b then (a, b) else (b, a) in
  let la = Array.length a and lb = Array.length b in
  let out = Array.make la 0 in
  let k = ref 0 in
  if la * 32 < lb then
    (* Gallop: probe the large side per element of the small side. *)
    Array.iter
      (fun x ->
        if mem_sorted b x then begin
          out.(!k) <- x;
          incr k
        end)
      a
  else begin
    let i = ref 0 and j = ref 0 in
    while !i < la && !j < lb do
      let x = a.(!i) and y = b.(!j) in
      if x < y then incr i
      else if x > y then incr j
      else begin
        out.(!k) <- x;
        incr i;
        incr j;
        incr k
      end
    done
  end;
  if !k = la then out else Array.sub out 0 !k

let merge_diff (a : int array) (b : int array) =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make la 0 in
  let k = ref 0 in
  if lb > 0 && la * 32 < lb then
    Array.iter
      (fun x ->
        if not (mem_sorted b x) then begin
          out.(!k) <- x;
          incr k
        end)
      a
  else begin
    let i = ref 0 and j = ref 0 in
    while !i < la && !j < lb do
      let x = a.(!i) and y = b.(!j) in
      if x < y then begin
        out.(!k) <- x;
        incr i;
        incr k
      end
      else if x > y then incr j
      else begin
        incr i;
        incr j
      end
    done;
    while !i < la do
      out.(!k) <- a.(!i);
      incr i;
      incr k
    done
  end;
  if !k = la then out else Array.sub out 0 !k

let merge_sym_diff (a : int array) (b : int array) =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make (la + lb) 0 in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < la && !j < lb do
    let x = a.(!i) and y = b.(!j) in
    if x < y then begin
      out.(!k) <- x;
      incr i;
      incr k
    end
    else if x > y then begin
      out.(!k) <- y;
      incr j;
      incr k
    end
    else begin
      incr i;
      incr j
    end
  done;
  while !i < la do
    out.(!k) <- a.(!i);
    incr i;
    incr k
  done;
  while !j < lb do
    out.(!k) <- b.(!j);
    incr j;
    incr k
  done;
  if !k = la + lb then out else Array.sub out 0 !k

let subset_sorted (a : int array) (b : int array) =
  let la = Array.length a and lb = Array.length b in
  la <= lb
  && (la = 0
     ||
     (a.(0) >= b.(0)
     && a.(la - 1) <= b.(lb - 1)
     &&
     let i = ref 0 and j = ref 0 and ok = ref true in
     while !ok && !i < la do
       while !j < lb && b.(!j) < a.(!i) do
         incr j
       done;
       if !j < lb && b.(!j) = a.(!i) then begin
         incr i;
         incr j
       end
       else ok := false
     done;
     !ok))

(* ---------- bitset kernels ---------- *)

let bit_test (b : bits) id =
  let k = id - b.base in
  k >= 0
  && k < Array.length b.words * bpw
  && b.words.(k / bpw) land (1 lsl (k mod bpw)) <> 0

let bits_top (b : bits) = b.base + (Array.length b.words * bpw)

let bits_union tbl (a : bits) (b : bits) =
  let base = min a.base b.base in
  let top = max (bits_top a) (bits_top b) in
  let nwords = (top - base) / bpw in
  if nwords > (bits_max_spread * (a.card + b.card) / bpw) + 1 then
    (* Result would be sparse across the combined span; merge as arrays. *)
    of_sorted_ids tbl (merge_union (ids_of_bits a) (ids_of_bits b))
  else begin
    let words = Array.make nwords 0 in
    let oa = (a.base - base) / bpw and ob = (b.base - base) / bpw in
    Array.iteri (fun w x -> words.(oa + w) <- x) a.words;
    Array.iteri (fun w x -> words.(ob + w) <- words.(ob + w) lor x) b.words;
    norm_bits tbl base words
  end

let bits_inter tbl (a : bits) (b : bits) =
  let base = max a.base b.base in
  let top = min (bits_top a) (bits_top b) in
  if top <= base then Empty
  else begin
    let nwords = (top - base) / bpw in
    let words = Array.make nwords 0 in
    let oa = (base - a.base) / bpw and ob = (base - b.base) / bpw in
    for w = 0 to nwords - 1 do
      words.(w) <- a.words.(oa + w) land b.words.(ob + w)
    done;
    norm_bits tbl base words
  end

let bits_diff tbl (a : bits) (b : bits) =
  let words = Array.copy a.words in
  let lo = max a.base b.base and hi = min (bits_top a) (bits_top b) in
  if lo < hi then begin
    let oa = (lo - a.base) / bpw and ob = (lo - b.base) / bpw in
    for w = 0 to ((hi - lo) / bpw) - 1 do
      words.(oa + w) <- words.(oa + w) land lnot b.words.(ob + w)
    done
  end;
  norm_bits tbl a.base words

let bits_sym_diff tbl (a : bits) (b : bits) =
  let base = min a.base b.base in
  let top = max (bits_top a) (bits_top b) in
  let nwords = (top - base) / bpw in
  if nwords > (bits_max_spread * (a.card + b.card) / bpw) + 1 then
    (* Result would be sparse across the combined span; merge as arrays. *)
    of_sorted_ids tbl (merge_sym_diff (ids_of_bits a) (ids_of_bits b))
  else begin
    let words = Array.make nwords 0 in
    let oa = (a.base - base) / bpw and ob = (b.base - base) / bpw in
    Array.iteri (fun w x -> words.(oa + w) <- x) a.words;
    Array.iteri (fun w x -> words.(ob + w) <- words.(ob + w) lxor x) b.words;
    norm_bits tbl base words
  end

let bits_subset (a : bits) (b : bits) =
  a.card <= b.card
  && a.base >= b.base
  && bits_top a <= bits_top b
  &&
  let o = (a.base - b.base) / bpw in
  let ok = ref true and w = ref 0 in
  let n = Array.length a.words in
  while !ok && !w < n do
    if a.words.(!w) land lnot b.words.(o + !w) <> 0 then ok := false;
    incr w
  done;
  !ok

let union_ids_bits tbl (ids : int array) (b : bits) =
  let la = Array.length ids in
  let base = min (ids.(0) - (ids.(0) mod bpw)) b.base in
  let hi = max ids.(la - 1) (bits_top b - 1) in
  let nwords = ((hi - base) / bpw) + 1 in
  if nwords > (bits_max_spread * (la + b.card) / bpw) + 1 then
    of_sorted_ids tbl (merge_union ids (ids_of_bits b))
  else begin
    let words = Array.make nwords 0 in
    let ob = (b.base - base) / bpw in
    Array.iteri (fun w x -> words.(ob + w) <- x) b.words;
    Array.iter
      (fun id ->
        let k = id - base in
        words.(k / bpw) <- words.(k / bpw) lor (1 lsl (k mod bpw)))
      ids;
    norm_bits tbl base words
  end

(* ---------- table compatibility ---------- *)

let remap tbl s =
  match s with
  | Empty -> Empty
  | _ ->
    let stbl = tbl_exn s in
    if stbl == tbl then s
    else
      of_ids tbl
        (Array.map (fun id -> Intern.intern tbl (Intern.value stbl id)) (to_ids s))

(* ---------- the public algebra ---------- *)

let empty = Empty
let is_empty t = t = Empty

let cardinal = function
  | Empty -> 0
  | Ids (_, ids) -> Array.length ids
  | Bits (_, b) -> b.card

let union a b =
  match (a, b) with
  | Empty, x | x, Empty -> x
  | _ ->
    let tbl = tbl_exn a in
    let b = remap tbl b in
    kernel ();
    (match (a, b) with
    | Ids (_, ai), Ids (_, bi) -> of_sorted_ids tbl (merge_union ai bi)
    | Bits (_, ab), Bits (_, bb) -> bits_union tbl ab bb
    | Ids (_, ai), Bits (_, bb) | Bits (_, bb), Ids (_, ai) -> union_ids_bits tbl ai bb
    | Empty, _ | _, Empty -> assert false)

let inter a b =
  match (a, b) with
  | Empty, _ | _, Empty -> Empty
  | _ ->
    let tbl = tbl_exn a in
    let b = remap tbl b in
    kernel ();
    (match (a, b) with
    | Ids (_, ai), Ids (_, bi) -> of_sorted_ids tbl (merge_inter ai bi)
    | Bits (_, ab), Bits (_, bb) -> bits_inter tbl ab bb
    | Ids (_, ai), Bits (_, bb) | Bits (_, bb), Ids (_, ai) ->
      let out = Array.make (Array.length ai) 0 in
      let k = ref 0 in
      Array.iter
        (fun id ->
          if bit_test bb id then begin
            out.(!k) <- id;
            incr k
          end)
        ai;
      of_sorted_ids tbl (if !k = Array.length ai then out else Array.sub out 0 !k)
    | Empty, _ | _, Empty -> assert false)

let diff a b =
  match (a, b) with
  | Empty, _ -> Empty
  | _, Empty -> a
  | _ ->
    let tbl = tbl_exn a in
    let b = remap tbl b in
    kernel ();
    (match (a, b) with
    | Ids (_, ai), Ids (_, bi) -> of_sorted_ids tbl (merge_diff ai bi)
    | Bits (_, ab), Bits (_, bb) -> bits_diff tbl ab bb
    | Ids (_, ai), Bits (_, bb) ->
      let out = Array.make (Array.length ai) 0 in
      let k = ref 0 in
      Array.iter
        (fun id ->
          if not (bit_test bb id) then begin
            out.(!k) <- id;
            incr k
          end)
        ai;
      of_sorted_ids tbl (if !k = Array.length ai then out else Array.sub out 0 !k)
    | Bits (_, ab), Ids (_, bi) ->
      let words = Array.copy ab.words in
      Array.iter
        (fun id ->
          let k = id - ab.base in
          if k >= 0 && k < Array.length words * bpw then
            words.(k / bpw) <- words.(k / bpw) land lnot (1 lsl (k mod bpw)))
        bi;
      norm_bits tbl ab.base words
    | Empty, _ | _, Empty -> assert false)

let sym_diff a b =
  match (a, b) with
  | Empty, x | x, Empty -> x
  | _ ->
    let tbl = tbl_exn a in
    let b = remap tbl b in
    kernel ();
    (match (a, b) with
    | Ids (_, ai), Ids (_, bi) -> of_sorted_ids tbl (merge_sym_diff ai bi)
    | Bits (_, ab), Bits (_, bb) -> bits_sym_diff tbl ab bb
    | Ids (_, ai), Bits (_, bb) | Bits (_, bb), Ids (_, ai) ->
      (* Mixed forms: the result is neither a copy of one operand nor a
         pure mask, so merge over sorted ids and re-canonicalize. *)
      of_sorted_ids tbl (merge_sym_diff ai (ids_of_bits bb))
    | Empty, _ | _, Empty -> assert false)

let subset a b =
  match (a, b) with
  | Empty, _ -> true
  | _, Empty -> false
  | _ ->
    let tbl = tbl_exn b in
    let a = remap tbl a in
    kernel ();
    (match (a, b) with
    | Ids (_, ai), Ids (_, bi) -> subset_sorted ai bi
    | Bits (_, ab), Bits (_, bb) -> bits_subset ab bb
    | Ids (_, ai), Bits (_, bb) ->
      Array.length ai <= bb.card && Array.for_all (fun id -> bit_test bb id) ai
    | Bits (_, ab), Ids (_, bi) -> subset_sorted (ids_of_bits ab) bi
    | Empty, _ | _, Empty -> assert false)

let arrays_equal (a : int array) (b : int array) =
  Array.length a = Array.length b
  &&
  let ok = ref true and i = ref 0 in
  while !ok && !i < Array.length a do
    if a.(!i) <> b.(!i) then ok := false;
    incr i
  done;
  !ok

(* Elements as representative values, in increasing Value order. Distinct
   ids are distinct equality classes, so the sort is strict. *)
let values_sorted t =
  match t with
  | Empty -> [||]
  | _ ->
    let tbl = tbl_exn t in
    let vs = Array.map (Intern.value tbl) (to_ids t) in
    Array.sort Value.compare vs;
    vs

let equal a b =
  match (a, b) with
  | Empty, Empty -> true
  | Empty, _ | _, Empty -> false
  | Ids (ta, ai), Ids (tb, bi) when ta == tb -> arrays_equal ai bi
  | Bits (ta, ab), Bits (tb, bb) when ta == tb ->
    ab.base = bb.base && ab.card = bb.card && arrays_equal ab.words bb.words
  | (Ids (ta, _) | Bits (ta, _)), (Ids (tb, _) | Bits (tb, _)) when ta == tb ->
    (* Representations are canonical: differing forms differ as sets. *)
    false
  | _ ->
    let va = values_sorted a and vb = values_sorted b in
    Array.length va = Array.length vb
    &&
    let ok = ref true and i = ref 0 in
    while !ok && !i < Array.length va do
      if Value.compare va.(!i) vb.(!i) <> 0 then ok := false;
      incr i
    done;
    !ok

(* Total order matching [Set.compare]: lexicographic over the increasing
   element sequence, a finished prefix ordering first. *)
let compare a b =
  let va = values_sorted a and vb = values_sorted b in
  let la = Array.length va and lb = Array.length vb in
  let rec go i =
    if i = la && i = lb then 0
    else if i = la then -1
    else if i = lb then 1
    else
      match Value.compare va.(i) vb.(i) with 0 -> go (i + 1) | c -> c
  in
  go 0

let mem_id id = function
  | Empty -> false
  | Ids (_, ids) -> mem_sorted ids id
  | Bits (_, b) -> bit_test b id

let mem v t =
  match t with
  | Empty -> false
  | _ -> (
    match Intern.find (tbl_exn t) v with None -> false | Some id -> mem_id id t)

let of_list_in tbl vs =
  of_ids tbl (Array.of_list (List.map (fun v -> Intern.intern tbl v) vs))

let of_list vs = of_list_in Intern.global vs
let singleton v = of_list [ v ]

let add v t =
  match t with
  | Empty -> singleton v
  | _ ->
    let tbl = tbl_exn t in
    let id = Intern.intern tbl v in
    if mem_id id t then t
    else begin
      let ids = to_ids t in
      let n = Array.length ids in
      let out = Array.make (n + 1) id in
      let before = ref 0 in
      while !before < n && ids.(!before) < id do
        incr before
      done;
      Array.blit ids 0 out 0 !before;
      Array.blit ids !before out (!before + 1) (n - !before);
      of_sorted_ids tbl out
    end

(* Size-aware folds: combining smallest-first keeps intermediates (and
   therefore kernel work) minimal, and an empty intermediate ends an
   intersection before any kernel runs. *)
let by_cardinal a b = Stdlib.compare (cardinal a) (cardinal b)

let union_list sets =
  match List.sort by_cardinal sets with
  | [] -> Empty
  | first :: rest -> List.fold_left union first rest

let inter_list sets =
  match List.sort by_cardinal sets with
  | [] -> Empty
  | first :: rest ->
    let rec go acc = function
      | [] -> acc
      | _ when is_empty acc -> Empty
      | s :: rest -> go (inter acc s) rest
    in
    go first rest

let to_list t = Array.to_list (values_sorted t)
let iter f t = Array.iter f (values_sorted t)
let fold f t init = Array.fold_left (fun acc v -> f v acc) init (values_sorted t)

let fold_items f t init =
  match t with
  | Empty -> init
  | _ ->
    let tbl = tbl_exn t in
    let pairs = Array.map (fun id -> (id, Intern.value tbl id)) (to_ids t) in
    Array.sort (fun (_, x) (_, y) -> Value.compare x y) pairs;
    Array.fold_left (fun acc (id, v) -> f id v acc) init pairs

let filter p t =
  match t with
  | Empty -> Empty
  | _ ->
    (* Apply the predicate in increasing Value order (matching the AVL
       implementation's iteration order) and rebuild from surviving
       ids. *)
    let tbl = tbl_exn t in
    let kept = fold_items (fun id v acc -> if p v then id :: acc else acc) t [] in
    of_ids tbl (Array.of_list (List.rev kept))

let fold_ids f t init =
  match t with
  | Empty -> init
  | Ids (_, ids) -> Array.fold_left (fun acc id -> f id acc) init ids
  | Bits (_, b) -> Array.fold_left (fun acc id -> f id acc) init (ids_of_bits b)

let hash t = fold_ids (fun id acc -> acc lxor Hashtbl.hash id) t 0

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Value.pp)
    (to_list s)

module Debug = struct
  let kernel_calls () = !kernel_calls

  let repr = function Empty -> "empty" | Ids _ -> "ids" | Bits _ -> "bits"
end
