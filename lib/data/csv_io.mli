(** Minimal CSV reader/writer for source relations.

    Format: the first line is a header of [name:type] fields, with the
    merge attribute marked by a leading [*] (e.g. [*L:string,V:string,
    D:int]). Field separator is [,]; no quoting — values containing
    commas are not supported, which is fine for the identifiers and
    categorical data fusion queries manipulate. *)

val schema_of_header : string -> (Schema.t, string) result
(** Parses just the header line ([*M:string,V:string,...]). *)

val read_string : name:string -> ?intern:Intern.t -> string -> (Relation.t, string) result
(** [intern] is the dictionary scope for the loaded relation
    ({!Intern.global} by default). *)

val read_file : name:string -> ?intern:Intern.t -> string -> (Relation.t, string) result

val write_string : Relation.t -> string

val write_file : Relation.t -> string -> unit
