open Fusion_data
open Fusion_cond
open Fusion_source
module Trace = Fusion_obs.Trace
module Metrics = Fusion_obs.Metrics
module Query_cache = Exec.Query_cache

type slot = Unset | Items of Item_set.t | Loaded of Relation.t

(* The compiled local-selection scan. Steady state hits the [Some]
   branch with the same physical relation every run (Load returns the
   source's own relation object), so the condition compiles once for
   the lifetime of the compiled plan; only a `Partial-failure Load,
   which binds a fresh empty relation, recompiles. *)
type local_state = { mutable vec : Cond_vec.t option }

let local_vec state cond rel =
  match state.vec with
  | Some v when Cond_vec.relation v == rel -> v
  | _ ->
    let v = Cond_vec.compile rel cond in
    state.vec <- Some v;
    v

type cop =
  | CSelect of { dst : int; s : Source.t; cond : Cond.t; sname : string; ctext : string }
  | CSemijoin of {
      dst : int;
      s : Source.t;
      cond : Cond.t;
      input : int;
      sname : string;
      ctext : string;
    }
  | CLoad of { dst : int; s : Source.t }
  | CLocal of { dst : int; cond : Cond.t; input : int; state : local_state }
  | CUnion of { dst : int; args : int array }
  | CInter of { dst : int; args : int array }
  | CDiff of { dst : int; left : int; right : int }

type t = {
  plan : Plan.t;
  sources : Source.t array;
  ops : Op.t array; (* plan order; kept for steps and trace parity *)
  cops : cop array; (* same order, variables resolved to slots *)
  out : int;
  slots : slot array; (* run-to-run scratch: makes a value non-reentrant *)
}

let plan t = t.plan
let sources t = t.sources

let compile ~sources ~conds p =
  match Plan.validate ~m:(Array.length conds) ~n:(Array.length sources) p with
  | Error e -> Error e
  | Ok () ->
    let slot_ids = Hashtbl.create 16 in
    let nslots = ref 0 in
    (* One slot per variable name: rebinding reuses the slot, so reads
       always see the latest binding, exactly like the interpreter's
       name -> binding table. *)
    let slot var =
      match Hashtbl.find_opt slot_ids var with
      | Some i -> i
      | None ->
        let i = !nslots in
        incr nslots;
        Hashtbl.add slot_ids var i;
        i
    in
    let cop (op : Op.t) =
      match op with
      | Select { dst; cond = c; source = j } ->
        let s = sources.(j) and cond = conds.(c) in
        CSelect
          { dst = slot dst; s; cond; sname = Source.name s; ctext = Cond.to_string cond }
      | Semijoin { dst; cond = c; source = j; input } ->
        let s = sources.(j) and cond = conds.(c) in
        let input = slot input in
        CSemijoin
          {
            dst = slot dst;
            s;
            cond;
            input;
            sname = Source.name s;
            ctext = Cond.to_string cond;
          }
      | Load { dst; source = j } -> CLoad { dst = slot dst; s = sources.(j) }
      | Local_select { dst; cond = c; input } ->
        let input = slot input in
        CLocal { dst = slot dst; cond = conds.(c); input; state = { vec = None } }
      | Union { dst; args } ->
        let args = Array.of_list (List.map slot args) in
        CUnion { dst = slot dst; args }
      | Inter { dst; args } ->
        let args = Array.of_list (List.map slot args) in
        CInter { dst = slot dst; args }
      | Diff { dst; left; right } ->
        CDiff { dst = slot dst; left = slot left; right = slot right }
    in
    let ops = Array.of_list (Plan.ops p) in
    let cops = Array.map cop ops in
    let out = slot (Plan.output p) in
    Ok { plan = p; sources; ops; cops; out; slots = Array.make !nslots Unset }

(* Unreachable after [Plan.validate] (which [compile] runs); kept as
   guards with the interpreter's exception type. *)
let items t i =
  match t.slots.(i) with
  | Items s -> s
  | Loaded _ -> raise (Exec.Runtime_error "loaded relation used as an item set")
  | Unset -> raise (Exec.Runtime_error "undefined variable")

let loaded t i =
  match t.slots.(i) with
  | Loaded r -> r
  | Items _ -> raise (Exec.Runtime_error "item set used as a loaded relation")
  | Unset -> raise (Exec.Runtime_error "undefined variable")

let items_of_args t args = Array.to_list (Array.map (items t) args)

let exec ?cache ?(policy = Exec.default_policy) ~record_steps t =
  let { Exec.retries; on_exhausted } = policy in
  Array.fill t.slots 0 (Array.length t.slots) Unset;
  let failures = ref 0 in
  let partial = ref false in
  let metered_cost () =
    Array.fold_left
      (fun acc s -> acc +. (Source.totals s).Fusion_net.Meter.cost)
      0.0 t.sources
  in
  let cache_outcome ctx hit =
    if cache <> None then begin
      Trace.attr ctx "cache" (Trace.Str (if hit then "hit" else "miss"));
      Metrics.record (fun r ->
          Metrics.incr r
            (if hit then "fusion_cache_hits_total" else "fusion_cache_misses_total"))
    end
  in
  let exec_cop ctx cop =
    match cop with
    | CSelect { dst; s; cond; sname; ctext } -> (
      let cached = Option.bind cache (fun c -> Query_cache.find_keyed c ~sname ~ctext) in
      match cached with
      | Some answer ->
        Option.iter
          (fun c ->
            Query_cache.record_hit c s ~items_sent:0
              ~items_received:(Item_set.cardinal answer))
          cache;
        cache_outcome ctx true;
        t.slots.(dst) <- Items answer;
        (0.0, Item_set.cardinal answer)
      | None ->
        let answer, cost = Source.select_query s cond in
        Option.iter (fun c -> Query_cache.store_keyed c ~sname ~ctext answer) cache;
        cache_outcome ctx false;
        t.slots.(dst) <- Items answer;
        (cost, Item_set.cardinal answer))
    | CSemijoin { dst; s; cond; input; sname; ctext } -> (
      let probe = items t input in
      let cached =
        match Option.bind cache (fun c -> Query_cache.find_keyed c ~sname ~ctext) with
        | Some full -> Some (Item_set.inter full probe)
        | None ->
          Option.bind cache (fun c -> Query_cache.find_sjq_keyed c ~sname ~ctext probe)
      in
      match cached with
      | Some answer ->
        Option.iter
          (fun c ->
            let received = Item_set.cardinal answer in
            if (Source.capability s).Capability.native_semijoin then
              Query_cache.record_hit c s ~items_sent:(Item_set.cardinal probe)
                ~items_received:received
            else
              Query_cache.record_hit_emulated c s ~bindings:(Item_set.cardinal probe)
                ~items_received:received)
          cache;
        cache_outcome ctx true;
        t.slots.(dst) <- Items answer;
        (0.0, Item_set.cardinal answer)
      | None ->
        let answer, cost = Source.semijoin_query s cond probe in
        Option.iter (fun c -> Query_cache.store_sjq_keyed c ~sname ~ctext probe answer) cache;
        cache_outcome ctx false;
        t.slots.(dst) <- Items answer;
        (cost, Item_set.cardinal answer))
    | CLoad { dst; s } ->
      let relation, cost = Source.load_query s in
      t.slots.(dst) <- Loaded relation;
      (cost, Relation.cardinality relation)
    | CLocal { dst; cond; input; state } ->
      let relation = loaded t input in
      let answer = Cond_vec.select_items (local_vec state cond relation) in
      t.slots.(dst) <- Items answer;
      (0.0, Item_set.cardinal answer)
    | CUnion { dst; args } ->
      let answer = Item_set.union_list (items_of_args t args) in
      t.slots.(dst) <- Items answer;
      (0.0, Item_set.cardinal answer)
    | CInter { dst; args } ->
      let answer = Item_set.inter_list (items_of_args t args) in
      t.slots.(dst) <- Items answer;
      (0.0, Item_set.cardinal answer)
    | CDiff { dst; left; right } ->
      let answer = Item_set.diff (items t left) (items t right) in
      t.slots.(dst) <- Items answer;
      (0.0, Item_set.cardinal answer)
  in
  (* Same retry protocol as the interpreter: source queries retry on
     timeouts, the step cost is the meter delta (failed attempts'
     overhead included), and `Partial binds a harmless empty value. *)
  let exec_with_retries ctx op cop =
    if not (Op.is_source_query op) then exec_cop ctx cop
    else begin
      let before = metered_cost () in
      let rec attempt budget =
        match exec_cop ctx cop with
        | _, result_size -> Some result_size
        | exception Source.Timeout _ ->
          incr failures;
          if budget > 0 then attempt (budget - 1)
          else if on_exhausted = `Fail then raise (Source.Timeout (Op.dst op))
          else begin
            partial := true;
            (match cop with
            | CSelect { dst; _ } | CSemijoin { dst; _ } ->
              t.slots.(dst) <- Items Item_set.empty
            | CLoad { dst; s } ->
              t.slots.(dst) <-
                Loaded (Relation.create ~name:(Source.name s) (Source.schema s))
            | _ -> assert false);
            None
          end
      in
      let result_size = attempt retries in
      (metered_cost () -. before, Option.value ~default:0 result_size)
    end
  in
  let steps = ref [] in
  let total = ref 0.0 in
  let n = Array.length t.ops in
  for k = 0 to n - 1 do
    let op = t.ops.(k) in
    let cost, result_size =
      Trace.span Trace.Step (Op.name op) (fun ctx ->
          let failures_before = !failures in
          let cost, result_size = exec_with_retries ctx op t.cops.(k) in
          if Trace.active ctx then begin
            Trace.attrs ctx
              [
                ("dst", Trace.Str (Op.dst op));
                ("cost", Trace.Float cost);
                ("result_size", Trace.Int result_size);
              ];
            if !failures > failures_before then
              Trace.attr ctx "timeouts" (Trace.Int (!failures - failures_before))
          end;
          (cost, result_size))
    in
    total := !total +. cost;
    if record_steps then steps := { Exec.op; cost; result_size } :: !steps
  done;
  {
    Exec.answer = items t t.out;
    steps = List.rev !steps;
    total_cost = !total;
    failures = !failures;
    partial = !partial;
  }

let run ?cache ?policy t = exec ?cache ?policy ~record_steps:true t

let answer ?cache ?policy t = (exec ?cache ?policy ~record_steps:false t).Exec.answer

(* Concurrent-engine hook: [Exec_async] resolves its [Local_select] ops
   against the compiled plan by physical op identity, sharing the
   steady-state scan cache. *)
let local_select t (op : Op.t) relation =
  let n = Array.length t.ops in
  let rec find k =
    if k = n then None
    else if t.ops.(k) == op then
      match t.cops.(k) with
      | CLocal { cond; state; _ } ->
        Some (Cond_vec.select_items (local_vec state cond relation))
      | _ -> None
    else find (k + 1)
  in
  find 0
