(* Live concurrent plan execution.

   Where [Exec] runs the plan's steps one after another (total elapsed
   time = total cost), this executor runs it on the discrete-event
   scheduler of [Fusion_net.Sim]: every source query is dispatched the
   moment its inputs are available, queries at different sources
   overlap, and queries at one source queue FIFO behind each other — so
   a slow mirror stalls only its own dependency chain.

   Source queries are dispatched in plan order, which makes each
   source's request sequence identical to the sequential executor's.
   Answers, per-step costs and fault-injection draws therefore agree
   exactly with [Exec.run] under the same policy; only the clock
   bookkeeping differs. That invariant is what the async property tests
   pin down. *)

open Fusion_data
open Fusion_cond
open Fusion_source
module Trace = Fusion_obs.Trace
module Metrics = Fusion_obs.Metrics
module Sim = Fusion_net.Sim
module Query_cache = Exec.Query_cache

(* Where a source-query step sat in the concurrent schedule: its
   dataflow node id (see [Parallel_exec.dataflow]), serving source and
   dependencies. [dispatched] is false when the step was answered
   without occupying the source (cache hit, or joining an in-flight
   request). Local operations have no schedule slot. *)
type sched = { task : int; server : int; deps : int list; dispatched : bool }

type step = {
  op : Op.t;
  cost : float;
  result_size : int;
  start : float;
  finish : float;
  coalesced : bool;
  sched : sched option;
}

type result = {
  answer : Item_set.t;
  steps : step list;
  total_cost : float;
  makespan : float;
  busy : float array;
  timeline : Sim.timeline;
  failures : int;
  partial : bool;
}

let to_exec_steps steps =
  List.map (fun s -> { Exec.op = s.op; cost = s.cost; result_size = s.result_size }) steps

type binding = Items of Item_set.t | Loaded of Relation.t

let run ?cache ?(policy = Exec.default_policy) ?(deadline = infinity) ~sources ~conds
    plan =
  let nodes = Array.of_list (Parallel_exec.dataflow plan) in
  let live = Sim.Live.create ~servers:(max 1 (Array.length sources)) in
  let env : (string, binding) Hashtbl.t = Hashtbl.create 16 in
  (* Simulated instant at which each variable's value is available. *)
  let avail : (string, float) Hashtbl.t = Hashtbl.create 16 in
  (* Selection requests issued by this run: (source, condition) ->
     (finish time, answer). A later step needing the same selection
     while the request is still in flight joins it instead of paying
     for a second one. *)
  let inflight : (string * string, float * Item_set.t) Hashtbl.t = Hashtbl.create 16 in
  let failures = ref 0 in
  let partial = ref false in
  let items var =
    match Hashtbl.find_opt env var with
    | Some (Items s) -> s
    | Some (Loaded _) ->
      raise (Exec.Runtime_error (var ^ " is a loaded relation, not an item set"))
    | None -> raise (Exec.Runtime_error ("undefined variable " ^ var))
  in
  let loaded var =
    match Hashtbl.find_opt env var with
    | Some (Loaded r) -> r
    | Some (Items _) ->
      raise (Exec.Runtime_error (var ^ " is an item set, not a loaded relation"))
    | None -> raise (Exec.Runtime_error ("undefined variable " ^ var))
  in
  let source j =
    if j < 0 || j >= Array.length sources then
      raise (Exec.Runtime_error (Printf.sprintf "source index %d out of range" j));
    sources.(j)
  in
  let cond i =
    if i < 0 || i >= Array.length conds then
      raise (Exec.Runtime_error (Printf.sprintf "condition index %d out of range" i));
    conds.(i)
  in
  let ready_of op =
    List.fold_left
      (fun acc v -> Float.max acc (Option.value ~default:0.0 (Hashtbl.find_opt avail v)))
      0.0 (Op.uses op)
  in
  let bind dst value at =
    Hashtbl.replace env dst value;
    Hashtbl.replace avail dst at
  in
  let cache_outcome ctx hit =
    if cache <> None then begin
      Trace.attr ctx "cache" (Trace.Str (if hit then "hit" else "miss"));
      Metrics.record (fun r ->
          Metrics.incr r
            (if hit then "fusion_cache_hits_total" else "fusion_cache_misses_total"))
    end
  in
  (* The plan-order position of the next source query, aligned with the
     [dataflow] nodes so timeline task ids match the replay executor's. *)
  let sq_index = ref 0 in
  let next_node () =
    let id = !sq_index in
    incr sq_index;
    let _, _, deps = nodes.(id) in
    (id, deps)
  in
  (* One logical source query, live: attempts run back to back on the
     source until success, an exhausted retry budget, or an exhausted
     per-query deadline. Returns the outcome (None = gave up) and the
     total service time consumed, failed attempts included. *)
  let attempt_query j f =
    let s = sources.(j) in
    let before = (Source.totals s).Fusion_net.Meter.cost in
    let consumed () = (Source.totals s).Fusion_net.Meter.cost -. before in
    let rec go budget =
      match f () with
      | v -> Some v
      | exception Source.Timeout _ ->
        incr failures;
        if budget > 0 && consumed () < deadline then go (budget - 1) else None
    in
    let outcome = go policy.Exec.retries in
    (outcome, consumed ())
  in
  let give_up op =
    if policy.Exec.on_exhausted = `Fail then raise (Source.Timeout (Op.dst op));
    partial := true
  in
  let exec_op ctx (op : Op.t) =
    match op with
    | Select { dst; cond = c; source = j } -> (
      let s = source j and condition = cond c in
      let ready = ready_of op in
      let key = (Source.name s, Cond.to_string condition) in
      let id, deps = next_node () in
      match Hashtbl.find_opt inflight key with
      | Some (finish, answer) when finish > ready ->
        (* The same selection is in flight: share its request. *)
        Option.iter
          (fun t ->
            Query_cache.record_hit t s ~items_sent:0
              ~items_received:(Item_set.cardinal answer))
          cache;
        cache_outcome ctx true;
        bind dst (Items answer) finish;
        { op; cost = 0.0; result_size = Item_set.cardinal answer; start = ready; finish;
          coalesced = true; sched = Some { task = id; server = j; deps; dispatched = false } }
      | _ -> (
        match Option.bind cache (fun t -> Query_cache.find t s condition) with
        | Some answer ->
          Option.iter
            (fun t ->
              Query_cache.record_hit t s ~items_sent:0
                ~items_received:(Item_set.cardinal answer))
            cache;
          cache_outcome ctx true;
          bind dst (Items answer) ready;
          { op; cost = 0.0; result_size = Item_set.cardinal answer; start = ready;
            finish = ready; coalesced = false;
            sched = Some { task = id; server = j; deps; dispatched = false } }
        | None -> (
          let outcome, duration =
            attempt_query j (fun () -> fst (Source.select_query s condition))
          in
          match outcome with
          | Some answer ->
            Option.iter (fun t -> Query_cache.store t s condition answer) cache;
            cache_outcome ctx false;
            let ev = Sim.Live.dispatch live ~id ~server:j ~ready ~duration ~deps in
            Hashtbl.replace inflight key (ev.Sim.finish, answer);
            bind dst (Items answer) ev.Sim.finish;
            { op; cost = duration; result_size = Item_set.cardinal answer;
              start = ev.Sim.start; finish = ev.Sim.finish; coalesced = false;
              sched = Some { task = id; server = j; deps; dispatched = true } }
          | None ->
            give_up op;
            let ev = Sim.Live.dispatch live ~id ~server:j ~ready ~duration ~deps in
            bind dst (Items Item_set.empty) ev.Sim.finish;
            { op; cost = duration; result_size = 0; start = ev.Sim.start;
              finish = ev.Sim.finish; coalesced = false;
              sched = Some { task = id; server = j; deps; dispatched = true } })))
    | Semijoin { dst; cond = c; source = j; input } -> (
      let s = source j and condition = cond c in
      let probe = items input in
      let ready = ready_of op in
      let key = (Source.name s, Cond.to_string condition) in
      let id, deps = next_node () in
      let record_derived_hit answer =
        Option.iter
          (fun t ->
            let received = Item_set.cardinal answer in
            if (Source.capability s).Capability.native_semijoin then
              Query_cache.record_hit t s ~items_sent:(Item_set.cardinal probe)
                ~items_received:received
            else
              Query_cache.record_hit_emulated t s ~bindings:(Item_set.cardinal probe)
                ~items_received:received)
          cache
      in
      let derived =
        match Hashtbl.find_opt inflight key with
        | Some (finish, full) when finish > ready ->
          (* The selection answer being fetched is a superset: join the
             in-flight request and intersect locally on arrival. *)
          Some (finish, Item_set.inter full probe, true)
        | _ -> (
          match Option.bind cache (fun t -> Query_cache.find t s condition) with
          | Some full -> Some (ready, Item_set.inter full probe, false)
          | None -> (
            match Option.bind cache (fun t -> Query_cache.find_sjq t s condition probe) with
            | Some answer -> Some (ready, answer, false)
            | None -> None))
      in
      match derived with
      | Some (finish, answer, coalesced) ->
        record_derived_hit answer;
        cache_outcome ctx true;
        bind dst (Items answer) finish;
        { op; cost = 0.0; result_size = Item_set.cardinal answer; start = ready; finish;
          coalesced; sched = Some { task = id; server = j; deps; dispatched = false } }
      | None -> (
        let outcome, duration =
          attempt_query j (fun () -> fst (Source.semijoin_query s condition probe))
        in
        match outcome with
        | Some answer ->
          Option.iter (fun t -> Query_cache.store_sjq t s condition probe answer) cache;
          cache_outcome ctx false;
          let ev = Sim.Live.dispatch live ~id ~server:j ~ready ~duration ~deps in
          bind dst (Items answer) ev.Sim.finish;
          { op; cost = duration; result_size = Item_set.cardinal answer;
            start = ev.Sim.start; finish = ev.Sim.finish; coalesced = false;
            sched = Some { task = id; server = j; deps; dispatched = true } }
        | None ->
          give_up op;
          let ev = Sim.Live.dispatch live ~id ~server:j ~ready ~duration ~deps in
          bind dst (Items Item_set.empty) ev.Sim.finish;
          { op; cost = duration; result_size = 0; start = ev.Sim.start;
            finish = ev.Sim.finish; coalesced = false;
            sched = Some { task = id; server = j; deps; dispatched = true } }))
    | Load { dst; source = j } -> (
      let s = source j in
      let ready = ready_of op in
      let id, deps = next_node () in
      let outcome, duration = attempt_query j (fun () -> fst (Source.load_query s)) in
      match outcome with
      | Some relation ->
        let ev = Sim.Live.dispatch live ~id ~server:j ~ready ~duration ~deps in
        bind dst (Loaded relation) ev.Sim.finish;
        { op; cost = duration; result_size = Relation.cardinality relation;
          start = ev.Sim.start; finish = ev.Sim.finish; coalesced = false;
          sched = Some { task = id; server = j; deps; dispatched = true } }
      | None ->
        give_up op;
        let ev = Sim.Live.dispatch live ~id ~server:j ~ready ~duration ~deps in
        bind dst (Loaded (Relation.create ~name:(Source.name s) (Source.schema s)))
          ev.Sim.finish;
        { op; cost = duration; result_size = 0; start = ev.Sim.start;
          finish = ev.Sim.finish; coalesced = false;
          sched = Some { task = id; server = j; deps; dispatched = true } })
    | Local_select { dst; cond = c; input } ->
      let relation = loaded input in
      let ready = ready_of op in
      let pred tuple = Cond.eval (Relation.schema relation) (cond c) tuple in
      let answer = Relation.select_items relation pred in
      bind dst (Items answer) ready;
      { op; cost = 0.0; result_size = Item_set.cardinal answer; start = ready;
        finish = ready; coalesced = false; sched = None }
    | Union { dst; args } ->
      let ready = ready_of op in
      let answer = Item_set.union_list (List.map items args) in
      bind dst (Items answer) ready;
      { op; cost = 0.0; result_size = Item_set.cardinal answer; start = ready;
        finish = ready; coalesced = false; sched = None }
    | Inter { dst; args } ->
      let ready = ready_of op in
      let answer = Item_set.inter_list (List.map items args) in
      bind dst (Items answer) ready;
      { op; cost = 0.0; result_size = Item_set.cardinal answer; start = ready;
        finish = ready; coalesced = false; sched = None }
    | Diff { dst; left; right } ->
      let ready = ready_of op in
      let answer = Item_set.diff (items left) (items right) in
      bind dst (Items answer) ready;
      { op; cost = 0.0; result_size = Item_set.cardinal answer; start = ready;
        finish = ready; coalesced = false; sched = None }
  in
  let steps =
    List.map
      (fun op ->
        Trace.span Trace.Step (Op.name op) (fun ctx ->
            let failures_before = !failures in
            let step = exec_op ctx op in
            if Trace.active ctx then begin
              Trace.attrs ctx
                [
                  ("dst", Trace.Str (Op.dst op));
                  ("cost", Trace.Float step.cost);
                  ("result_size", Trace.Int step.result_size);
                  ("t_start", Trace.Float step.start);
                  ("t_finish", Trace.Float step.finish);
                ];
              (match step.sched with
              | Some s ->
                Trace.attrs ctx
                  [
                    ("task", Trace.Int s.task);
                    ("server", Trace.Int s.server);
                    ("deps",
                     Trace.Str (String.concat "," (List.map string_of_int s.deps)));
                    ("dispatched", Trace.Bool s.dispatched);
                  ]
              | None -> ());
              (match op with
              | Select { cond = c; _ } | Semijoin { cond = c; _ }
              | Local_select { cond = c; _ } ->
                Trace.attr ctx "cond" (Trace.Int c)
              | _ -> ());
              if step.coalesced then Trace.attr ctx "coalesced" (Trace.Bool true);
              if !failures > failures_before then
                Trace.attr ctx "timeouts" (Trace.Int (!failures - failures_before))
            end;
            step))
      (Plan.ops plan)
  in
  {
    answer = items (Plan.output plan);
    steps;
    total_cost = List.fold_left (fun acc s -> acc +. s.cost) 0.0 steps;
    makespan = List.fold_left (fun acc s -> Float.max acc s.finish) 0.0 steps;
    busy = Sim.Live.busy live;
    timeline = Sim.Live.timeline live;
    failures = !failures;
    partial = !partial;
  }
