(* Live concurrent plan execution.

   Where [Exec] runs the plan's steps one after another (total elapsed
   time = total cost), this executor runs it on a [Fusion_rt.Runtime]:
   every source query is dispatched the moment its inputs are
   available, queries at different sources overlap, and queries at one
   source queue FIFO behind each other — so a slow mirror stalls only
   its own dependency chain. On the simulator backend the clock is the
   discrete-event schedule of [Fusion_net.Sim]; on the domains backend
   requests really run concurrently and the clock is the wall.

   On the simulator, source queries are dispatched in plan order, which
   makes each source's request sequence identical to the sequential
   executor's. Answers, per-step costs and fault-injection draws
   therefore agree exactly with [Exec.run] under the same policy; only
   the clock bookkeeping differs. That invariant is what the async
   property tests pin down.

   The execution itself lives in [Engine]: an incremental cursor over
   the plan that evaluates local operations for free and surfaces one
   source query at a time for an external scheduler to dispatch onto a
   (possibly shared) runtime. [run] is the trivial driver — one private
   simulated network, dispatch every request the moment it surfaces —
   [run_on] executes on a caller-supplied runtime (concurrent dataflow
   driver when the clock is real), and a serving layer (lib/serve) is
   the interesting one: many engines, one network, a scheduling policy
   arbitrating between them. *)

open Fusion_data
open Fusion_cond
open Fusion_source
module Trace = Fusion_obs.Trace
module Metrics = Fusion_obs.Metrics
module Sim = Fusion_net.Sim
module Meter = Fusion_net.Meter
module Runtime = Fusion_rt.Runtime
module Fiber = Fusion_rt.Fiber
module Query_cache = Exec.Query_cache

(* Where a source-query step sat in the concurrent schedule: its
   dataflow node id (see [Parallel_exec.dataflow]), serving source and
   dependencies. [dispatched] is false when the step was answered
   without occupying the source (cache hit, or joining an in-flight
   request). Local operations have no schedule slot. *)
type sched = { task : int; server : int; deps : int list; dispatched : bool }

type step = {
  op : Op.t;
  cost : float;
  result_size : int;
  start : float;
  finish : float;
  coalesced : bool;
  sched : sched option;
}

type result = {
  answer : Item_set.t;
  steps : step list;
  total_cost : float;
  makespan : float;
  busy : float array;
  timeline : Sim.timeline;
  failures : int;
  partial : bool;
}

let to_exec_steps steps =
  List.map (fun s -> { Exec.op = s.op; cost = s.cost; result_size = s.result_size }) steps

type binding = Items of Item_set.t | Loaded of Relation.t

module Engine = struct
  type request = { rq_op : Op.t; rq_server : int; rq_ready : float; rq_task : int }

  type t = {
    sources : Source.t array;
    conds : Cond.t array;
    cache : Query_cache.t option;
    policy : Exec.policy;
    deadline : float;
    answers : Answer_cache.t;
    rt : Runtime.t;
    offset : int;
    base : float;
    nodes : (Op.t * int * int list) array;
    env : (string, binding) Hashtbl.t;
    (* Instant at which each variable's value is available (simulated
       or wall clock, whichever the runtime keeps). *)
    avail : (string, float) Hashtbl.t;
    mutable ops : Op.t list; (* the plan suffix still to execute *)
    mutable sq_index : int; (* plan-order position of the next source query *)
    mutable steps : step list; (* newest first *)
    mutable failures : int;
    mutable partial : bool;
    output : string;
    compiled : Plan_compile.t option;
  }

  let create ?cache ?(policy = Exec.default_policy) ?(deadline = infinity) ?answers
      ?(offset = 0) ?(base = 0.0) ?compiled ~rt ~sources ~conds plan =
    {
      sources;
      conds;
      cache;
      policy;
      deadline;
      answers = (match answers with Some a -> a | None -> Answer_cache.create ());
      rt;
      offset;
      base;
      nodes = Array.of_list (Parallel_exec.dataflow plan);
      env = Hashtbl.create 16;
      avail = Hashtbl.create 16;
      ops = Plan.ops plan;
      sq_index = 0;
      steps = [];
      failures = 0;
      partial = false;
      output = Plan.output plan;
      compiled;
    }

  let items t var =
    match Hashtbl.find_opt t.env var with
    | Some (Items s) -> s
    | Some (Loaded _) ->
      raise (Exec.Runtime_error (var ^ " is a loaded relation, not an item set"))
    | None -> raise (Exec.Runtime_error ("undefined variable " ^ var))

  let loaded t var =
    match Hashtbl.find_opt t.env var with
    | Some (Loaded r) -> r
    | Some (Items _) ->
      raise (Exec.Runtime_error (var ^ " is an item set, not a loaded relation"))
    | None -> raise (Exec.Runtime_error ("undefined variable " ^ var))

  let source t j =
    if j < 0 || j >= Array.length t.sources then
      raise (Exec.Runtime_error (Printf.sprintf "source index %d out of range" j));
    t.sources.(j)

  let cond t i =
    if i < 0 || i >= Array.length t.conds then
      raise (Exec.Runtime_error (Printf.sprintf "condition index %d out of range" i));
    t.conds.(i)

  let ready_of t op =
    List.fold_left
      (fun acc v ->
        Float.max acc (Option.value ~default:t.base (Hashtbl.find_opt t.avail v)))
      t.base (Op.uses op)

  let bind t dst value at =
    Hashtbl.replace t.env dst value;
    Hashtbl.replace t.avail dst at

  let cache_outcome t ctx hit =
    if t.cache <> None then begin
      Trace.attr ctx "cache" (Trace.Str (if hit then "hit" else "miss"));
      Metrics.record (fun r ->
          Metrics.incr r
            (if hit then "fusion_cache_hits_total" else "fusion_cache_misses_total"))
    end

  (* The plan-order position of the next source query, aligned with the
     [dataflow] nodes; ids (and the deps they reference) are shifted by
     [offset] so timelines of many engines sharing one network never
     collide. *)
  let next_node t =
    let id = t.sq_index in
    t.sq_index <- t.sq_index + 1;
    let _, _, deps = t.nodes.(id) in
    (t.offset + id, List.map (fun d -> t.offset + d) deps)

  let slot = function
    | Some node -> node
    | None -> invalid_arg "Exec_async: source query without a schedule slot"

  (* One logical source query issued through the runtime. The thunk —
     running on a pool worker under a real-clock backend — touches only
     the source: attempts run back to back until success, an exhausted
     retry budget, or an exhausted per-query deadline, and the meter
     delta is captured on the lane (where same-source requests
     serialize) for wall-clock calibration. Engine state — the failure
     counter, caches, bindings — is applied on the driving fibre after
     the call returns, so the thunk is safe to run on another domain. *)
  let source_call t ~node ~server:j ~ready f =
    let id, deps = slot node in
    let s = t.sources.(j) in
    let retries = t.policy.Exec.retries and deadline = t.deadline in
    let fail_fast = t.policy.Exec.on_exhausted = `Fail in
    let thunk () =
      let before = Source.totals s in
      let consumed () = (Source.totals s).Meter.cost -. before.Meter.cost in
      let rec go budget fails =
        match f () with
        | v -> (Some v, fails)
        | exception Source.Timeout _ ->
          if budget > 0 && consumed () < deadline then go (budget - 1) (fails + 1)
          else (None, fails + 1)
      in
      let outcome, fails = go retries 0 in
      let after = Source.totals s in
      let delta =
        {
          Meter.requests = after.Meter.requests - before.Meter.requests;
          items_sent = after.Meter.items_sent - before.Meter.items_sent;
          items_received = after.Meter.items_received - before.Meter.items_received;
          tuples_received = after.Meter.tuples_received - before.Meter.tuples_received;
          cost = after.Meter.cost -. before.Meter.cost;
        }
      in
      (* Under [`Fail] the sequential oracle raises before its failed
         attempt ever reaches the network: don't book it. *)
      let book = outcome <> None || not fail_fast in
      ((outcome, fails, delta), delta.Meter.cost, book)
    in
    let (outcome, fails, delta), ev =
      Runtime.call t.rt ~id ~server:j ~ready ~deps thunk
    in
    t.failures <- t.failures + fails;
    Runtime.observe t.rt ~server:j ~totals:delta ~wall:(ev.Sim.finish -. ev.Sim.start);
    (outcome, delta.Meter.cost, ev)

  let give_up t op =
    if t.policy.Exec.on_exhausted = `Fail then raise (Source.Timeout (Op.dst op));
    t.partial <- true

  let exec_op t ctx ~node (op : Op.t) =
    match op with
    | Select { dst; cond = c; source = j } -> (
      let s = source t j and condition = cond t c in
      let ready = ready_of t op in
      let sname = Source.name s and ctext = Cond.to_string condition in
      let id, deps = slot node in
      match
        Answer_cache.find t.answers ~source:sname ~cond:ctext
          ~version:(Relation.version (Source.relation s))
          ~ready ()
      with
      | Answer_cache.Inflight (finish, answer) ->
        (* The same selection is in flight: share its request. *)
        Option.iter
          (fun c ->
            Query_cache.record_hit c s ~items_sent:0
              ~items_received:(Item_set.cardinal answer))
          t.cache;
        cache_outcome t ctx true;
        bind t dst (Items answer) finish;
        { op; cost = 0.0; result_size = Item_set.cardinal answer; start = ready; finish;
          coalesced = true; sched = Some { task = id; server = j; deps; dispatched = false } }
      | Answer_cache.Cached (_staleness, answer) ->
        (* A recent enough answer from another query: reuse it. *)
        Option.iter
          (fun c ->
            Query_cache.record_hit c s ~items_sent:0
              ~items_received:(Item_set.cardinal answer))
          t.cache;
        cache_outcome t ctx true;
        bind t dst (Items answer) ready;
        { op; cost = 0.0; result_size = Item_set.cardinal answer; start = ready;
          finish = ready; coalesced = false;
          sched = Some { task = id; server = j; deps; dispatched = false } }
      | Answer_cache.Miss -> (
        match Option.bind t.cache (fun c -> Query_cache.find c s condition) with
        | Some answer ->
          Option.iter
            (fun c ->
              Query_cache.record_hit c s ~items_sent:0
                ~items_received:(Item_set.cardinal answer))
            t.cache;
          cache_outcome t ctx true;
          bind t dst (Items answer) ready;
          { op; cost = 0.0; result_size = Item_set.cardinal answer; start = ready;
            finish = ready; coalesced = false;
            sched = Some { task = id; server = j; deps; dispatched = false } }
        | None -> (
          let outcome, duration, ev =
            source_call t ~node ~server:j ~ready (fun () ->
                fst (Source.select_query s condition))
          in
          match outcome with
          | Some answer ->
            Option.iter (fun c -> Query_cache.store c s condition answer) t.cache;
            cache_outcome t ctx false;
            Answer_cache.note t.answers ~source:sname ~cond:ctext
              ~finish:ev.Sim.finish
              ~version:(Relation.version (Source.relation s))
              answer;
            bind t dst (Items answer) ev.Sim.finish;
            { op; cost = duration; result_size = Item_set.cardinal answer;
              start = ev.Sim.start; finish = ev.Sim.finish; coalesced = false;
              sched = Some { task = id; server = j; deps; dispatched = true } }
          | None ->
            give_up t op;
            bind t dst (Items Item_set.empty) ev.Sim.finish;
            { op; cost = duration; result_size = 0; start = ev.Sim.start;
              finish = ev.Sim.finish; coalesced = false;
              sched = Some { task = id; server = j; deps; dispatched = true } })))
    | Semijoin { dst; cond = c; source = j; input } -> (
      let s = source t j and condition = cond t c in
      let probe = items t input in
      let ready = ready_of t op in
      let sname = Source.name s and ctext = Cond.to_string condition in
      let id, deps = slot node in
      let record_derived_hit answer =
        Option.iter
          (fun c ->
            let received = Item_set.cardinal answer in
            if (Source.capability s).Capability.native_semijoin then
              Query_cache.record_hit c s ~items_sent:(Item_set.cardinal probe)
                ~items_received:received
            else
              Query_cache.record_hit_emulated c s ~bindings:(Item_set.cardinal probe)
                ~items_received:received)
          t.cache
      in
      let derived =
        match
          Answer_cache.find t.answers ~source:sname ~cond:ctext
            ~version:(Relation.version (Source.relation s))
            ~ready ()
        with
        | Answer_cache.Inflight (finish, full) ->
          (* The selection answer being fetched is a superset: join the
             in-flight request and intersect locally on arrival. *)
          Some (finish, Item_set.inter full probe, true)
        | Answer_cache.Cached (_staleness, full) ->
          Some (ready, Item_set.inter full probe, false)
        | Answer_cache.Miss -> (
          match Option.bind t.cache (fun c -> Query_cache.find c s condition) with
          | Some full -> Some (ready, Item_set.inter full probe, false)
          | None -> (
            match
              Option.bind t.cache (fun c -> Query_cache.find_sjq c s condition probe)
            with
            | Some answer -> Some (ready, answer, false)
            | None -> None))
      in
      match derived with
      | Some (finish, answer, coalesced) ->
        record_derived_hit answer;
        cache_outcome t ctx true;
        bind t dst (Items answer) finish;
        { op; cost = 0.0; result_size = Item_set.cardinal answer; start = ready; finish;
          coalesced; sched = Some { task = id; server = j; deps; dispatched = false } }
      | None -> (
        let outcome, duration, ev =
          source_call t ~node ~server:j ~ready (fun () ->
              fst (Source.semijoin_query s condition probe))
        in
        match outcome with
        | Some answer ->
          Option.iter (fun c -> Query_cache.store_sjq c s condition probe answer) t.cache;
          cache_outcome t ctx false;
          bind t dst (Items answer) ev.Sim.finish;
          { op; cost = duration; result_size = Item_set.cardinal answer;
            start = ev.Sim.start; finish = ev.Sim.finish; coalesced = false;
            sched = Some { task = id; server = j; deps; dispatched = true } }
        | None ->
          give_up t op;
          bind t dst (Items Item_set.empty) ev.Sim.finish;
          { op; cost = duration; result_size = 0; start = ev.Sim.start;
            finish = ev.Sim.finish; coalesced = false;
            sched = Some { task = id; server = j; deps; dispatched = true } }))
    | Load { dst; source = j } -> (
      let s = source t j in
      let ready = ready_of t op in
      let id, deps = slot node in
      let outcome, duration, ev =
        source_call t ~node ~server:j ~ready (fun () -> fst (Source.load_query s))
      in
      match outcome with
      | Some relation ->
        bind t dst (Loaded relation) ev.Sim.finish;
        { op; cost = duration; result_size = Relation.cardinality relation;
          start = ev.Sim.start; finish = ev.Sim.finish; coalesced = false;
          sched = Some { task = id; server = j; deps; dispatched = true } }
      | None ->
        give_up t op;
        bind t dst (Loaded (Relation.create ~name:(Source.name s) (Source.schema s)))
          ev.Sim.finish;
        { op; cost = duration; result_size = 0; start = ev.Sim.start;
          finish = ev.Sim.finish; coalesced = false;
          sched = Some { task = id; server = j; deps; dispatched = true } })
    | Local_select { dst; cond = c; input } ->
      let relation = loaded t input in
      let ready = ready_of t op in
      (* Compiled-plan engines share the steady-state columnar scan;
         standalone engines compile one per op (still a column scan,
         just not reused across runs). *)
      let answer =
        match
          Option.bind t.compiled (fun cp -> Plan_compile.local_select cp op relation)
        with
        | Some answer -> answer
        | None -> Cond_vec.select_items (Cond_vec.compile relation (cond t c))
      in
      bind t dst (Items answer) ready;
      { op; cost = 0.0; result_size = Item_set.cardinal answer; start = ready;
        finish = ready; coalesced = false; sched = None }
    | Union { dst; args } ->
      let ready = ready_of t op in
      let answer = Item_set.union_list (List.map (items t) args) in
      bind t dst (Items answer) ready;
      { op; cost = 0.0; result_size = Item_set.cardinal answer; start = ready;
        finish = ready; coalesced = false; sched = None }
    | Inter { dst; args } ->
      let ready = ready_of t op in
      let answer = Item_set.inter_list (List.map (items t) args) in
      bind t dst (Items answer) ready;
      { op; cost = 0.0; result_size = Item_set.cardinal answer; start = ready;
        finish = ready; coalesced = false; sched = None }
    | Diff { dst; left; right } ->
      let ready = ready_of t op in
      let answer = Item_set.diff (items t left) (items t right) in
      bind t dst (Items answer) ready;
      { op; cost = 0.0; result_size = Item_set.cardinal answer; start = ready;
        finish = ready; coalesced = false; sched = None }

  let run_op t ~node op =
    let step =
      Trace.span Trace.Step (Op.name op) (fun ctx ->
          let failures_before = t.failures in
          let step = exec_op t ctx ~node op in
          if Trace.active ctx then begin
            Trace.attrs ctx
              [
                ("dst", Trace.Str (Op.dst op));
                ("cost", Trace.Float step.cost);
                ("result_size", Trace.Int step.result_size);
                ("t_start", Trace.Float step.start);
                ("t_finish", Trace.Float step.finish);
              ];
            (match step.sched with
            | Some s ->
              Trace.attrs ctx
                [
                  ("task", Trace.Int s.task);
                  ("server", Trace.Int s.server);
                  ("deps",
                   Trace.Str (String.concat "," (List.map string_of_int s.deps)));
                  ("dispatched", Trace.Bool s.dispatched);
                ]
            | None -> ());
            (match op with
            | Select { cond = c; _ } | Semijoin { cond = c; _ }
            | Local_select { cond = c; _ } ->
              Trace.attr ctx "cond" (Trace.Int c)
            | _ -> ());
            if step.coalesced then Trace.attr ctx "coalesced" (Trace.Bool true);
            if t.failures > failures_before then
              Trace.attr ctx "timeouts" (Trace.Int (t.failures - failures_before))
          end;
          step)
    in
    t.steps <- step :: t.steps;
    step

  (* Evaluate free local operations at the head of the cursor, then
     surface the next source query (or nothing, when the plan is done).
     Local operations never need a scheduling decision: they cost
     nothing and happen the instant their inputs are available. *)
  let rec pending t =
    match t.ops with
    | [] -> None
    | op :: rest ->
      if Op.is_source_query op then
        let server =
          match op with
          | Op.Select { source; _ } | Op.Semijoin { source; _ } | Op.Load { source; _ } ->
            source
          | _ -> assert false
        in
        Some
          {
            rq_op = op;
            rq_server = server;
            rq_ready = ready_of t op;
            rq_task = t.offset + t.sq_index;
          }
      else begin
        t.ops <- rest;
        ignore (run_op t ~node:None op);
        pending t
      end

  let dispatch t =
    match t.ops with
    | op :: rest when Op.is_source_query op ->
      t.ops <- rest;
      let node = next_node t in
      run_op t ~node:(Some node) op
    | _ -> invalid_arg "Exec_async.Engine.dispatch: no pending source query"

  let finished t = t.ops = []
  let task_count t = Array.length t.nodes
  let steps t = List.rev t.steps
  let failures t = t.failures
  let partial t = t.partial

  let total_cost t = List.fold_left (fun acc s -> acc +. s.cost) 0.0 t.steps
  let finish_time t = List.fold_left (fun acc s -> Float.max acc s.finish) t.base t.steps

  let answer t =
    if t.ops <> [] then invalid_arg "Exec_async.Engine.answer: plan not finished";
    items t t.output
end

(* The sequential driver: dispatch every request the moment it
   surfaces. On the simulator this is the oracle execution order. *)
let drive_sequential e =
  let rec drive () =
    match Engine.pending e with
    | Some _ ->
      ignore (Engine.dispatch e);
      drive ()
    | None -> ()
  in
  drive ()

(* The concurrent dataflow driver for real-clock runtimes: walk the
   plan in order, fork one fibre per source query, and synchronize
   through per-variable promises — an op waits only for the in-flight
   producers of its own inputs, so independent queries really overlap
   while the runtime's per-server lanes keep each source FIFO. Node
   ids are assigned on the driving fibre, in plan order, before the
   query fibre first suspends. *)
let drive_concurrent e rt =
  Runtime.run rt @@ fun () ->
  let inflight : (string, unit Fiber.Promise.t) Hashtbl.t = Hashtbl.create 16 in
  let await_uses op =
    List.iter
      (fun v ->
        match Hashtbl.find_opt inflight v with
        | Some p -> Fiber.Promise.await p
        | None -> ())
      (Op.uses op)
  in
  Fiber.Switch.run (fun sw ->
      let rec drive () =
        match e.Engine.ops with
        | [] -> ()
        | op :: rest ->
          await_uses op;
          e.Engine.ops <- rest;
          if Op.is_source_query op then begin
            let node = Engine.next_node e in
            let p = Fiber.Promise.create () in
            Hashtbl.replace inflight (Op.dst op) p;
            Fiber.Switch.fork sw (fun () ->
                Fun.protect
                  ~finally:(fun () -> Fiber.Promise.resolve p ())
                  (fun () -> ignore (Engine.run_op e ~node:(Some node) op)))
          end
          else ignore (Engine.run_op e ~node:None op);
          drive ()
      in
      drive ())

let collect e rt =
  let steps = Engine.steps e in
  {
    answer = Engine.answer e;
    steps;
    total_cost = List.fold_left (fun acc s -> acc +. s.cost) 0.0 steps;
    makespan = List.fold_left (fun acc s -> Float.max acc s.finish) 0.0 steps;
    busy = Runtime.busy rt;
    timeline = Runtime.timeline rt;
    failures = Engine.failures e;
    partial = Engine.partial e;
  }

let run_on ?cache ?policy ?deadline ~rt ~sources ~conds plan =
  let e = Engine.create ?cache ?policy ?deadline ~rt ~sources ~conds plan in
  if Runtime.is_real rt then drive_concurrent e rt else drive_sequential e;
  collect e rt

let run ?cache ?policy ?deadline ~sources ~conds plan =
  run_on ?cache ?policy ?deadline
    ~rt:(Runtime.sim ~servers:(Array.length sources))
    ~sources ~conds plan
