(** Cross-query answer sharing for selection queries.

    One table, keyed by [(source, condition)], that a serving layer
    shares between every concurrently executing query: it generalizes
    the in-flight request coalescer of {!Exec_async} (same selection
    still in flight on the simulated clock → join the pending request)
    and the session {!Exec.Query_cache} (completed answer → replay it)
    into a single mechanism with time-to-live semantics.

    A lookup at simulated instant [ready] sees one of three things:

    - {!Inflight}: the request is still being served ([finish > ready]);
      the asker joins it, pays nothing, and gets the answer at [finish].
    - {!Cached}: the answer materialized no more than [ttl] ago; the
      asker reuses it immediately, accepting [ready - finish] of
      staleness (accounted in {!stats}).
    - {!Miss}: nothing usable — issue a real request and {!note} its
      answer when it is dispatched.

    With [ttl = None] (the default) completed answers are never
    replayed, which makes the table behave exactly like the historical
    per-run in-flight coalescer — the configuration under which a lone
    query served by {!Server} matches {!Exec_async.run} byte for
    byte. *)

open Fusion_data

type t

type stats = {
  lookups : int;
  inflight_hits : int;
  cached_hits : int;
  expirations : int;  (** entries found but older than the TTL *)
  staleness_sum : float;
  staleness_max : float;
}

type outcome =
  | Inflight of float * Item_set.t  (** finish time of the shared request *)
  | Cached of float * Item_set.t  (** staleness of the reused answer *)
  | Miss

val create : ?ttl:float -> unit -> t
(** [ttl] is how long (in simulated time units) a completed answer may
    be reused; omit it for in-flight sharing only.
    @raise Invalid_argument on a negative ttl. *)

val ttl : t -> float option

val find : t -> source:string -> cond:string -> ready:float -> outcome
(** Consult the table at instant [ready]. Expired entries are evicted
    as a side effect. *)

val note : t -> source:string -> cond:string -> finish:float -> Item_set.t -> unit
(** Record a dispatched selection: its answer becomes joinable until
    [finish] and (with a TTL) reusable until [finish + ttl]. *)

val stats : t -> stats
val clear : t -> unit
val pp_stats : Format.formatter -> stats -> unit
