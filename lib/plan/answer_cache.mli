(** Cross-query answer sharing for selection queries.

    One table, keyed by [(source, condition)], that a serving layer
    shares between every concurrently executing query: it generalizes
    the in-flight request coalescer of {!Exec_async} (same selection
    still in flight on the simulated clock → join the pending request)
    and the session {!Exec.Query_cache} (completed answer → replay it)
    into a single mechanism with time-to-live semantics.

    A lookup at simulated instant [ready] sees one of three things:

    - {!Inflight}: the request is still being served ([finish > ready]);
      the asker joins it, pays nothing, and gets the answer at [finish].
    - {!Cached}: the answer materialized no more than [ttl] ago; the
      asker reuses it immediately, accepting [ready - finish] of
      staleness (accounted in {!stats}).
    - {!Miss}: nothing usable — issue a real request and {!note} its
      answer when it is dispatched.

    With [ttl = None] (the default) completed answers are never
    replayed, which makes the table behave exactly like the historical
    per-run in-flight coalescer — the configuration under which a lone
    query served by {!Server} matches {!Exec_async.run} byte for
    byte.

    {b Versioned mode.} With [versioned = true], staleness is accounted
    against source {e versions} instead of the clock: {!note} records
    the relation version the answer was computed at, {!apply_delta}
    patches or invalidates entries when a source delta lands, and a
    lookup whose [version] matches the entry replays the answer with an
    {e exact} staleness of zero. A version mismatch (a delta that
    bypassed {!apply_delta}) invalidates the entry rather than serving
    it. TTL still governs lookups that carry no version. *)

open Fusion_data

type t

type stats = {
  lookups : int;
  inflight_hits : int;
  cached_hits : int;
  expirations : int;  (** entries found but older than the TTL *)
  invalidated : int;
      (** entries dropped by a delta ({!apply_delta}) or by a versioned
          lookup that caught a stale entry *)
  patched : int;  (** entries updated in place by {!apply_delta} *)
  staleness_sum : float;
  staleness_max : float;
}

type outcome =
  | Inflight of float * Item_set.t  (** finish time of the shared request *)
  | Cached of float * Item_set.t  (** staleness of the reused answer *)
  | Miss

val create : ?ttl:float -> ?versioned:bool -> unit -> t
(** [ttl] is how long (in simulated time units) a completed answer may
    be reused; omit it for in-flight sharing only. [versioned] (default
    [false]) turns on version-vector staleness accounting.
    @raise Invalid_argument on a negative ttl. *)

val ttl : t -> float option
val versioned : t -> bool

val find :
  t -> source:string -> cond:string -> ?version:int -> ready:float -> unit -> outcome
(** Consult the table at instant [ready]; [version] is the source
    relation's current version, used only in versioned mode. Expired
    and version-stale entries are evicted as a side effect. *)

val note :
  t -> source:string -> cond:string -> finish:float -> ?version:int -> Item_set.t -> unit
(** Record a dispatched selection: its answer becomes joinable until
    [finish] and (with a TTL) reusable until [finish + ttl]. [version]
    is the source version the answer reflects (versioned mode). *)

val apply_delta :
  t ->
  source:string ->
  now:float ->
  version:int ->
  patch:(cond:string -> Item_set.t -> Item_set.t option) ->
  unit
(** A delta landed on [source], whose relation is now at [version].
    Every completed entry for that source is handed to [patch] (with
    its condition text): [Some answer'] replaces the answer in place
    and stamps the new version (the patch is expected to cost
    O(delta)); [None] invalidates. Entries still in flight at [now] are
    always invalidated — their pending answers reflect the pre-delta
    base. *)

val publish_metrics : t -> unit
(** Flush counter deltas since the last call to the installed
    {!Fusion_obs.Metrics} registry as [fusion_cache_*] counters
    (lookups, inflight/cached hits, misses, expired, invalidated,
    patched). No-op without a registry. *)

val stats : t -> stats
val clear : t -> unit
val pp_stats : Format.formatter -> stats -> unit
