(* Cross-query answer sharing for selection queries.

   Generalizes two mechanisms that used to live inside a single run of
   the concurrent executor: the in-flight coalescer (a later step
   needing a selection another step has already put in flight joins the
   pending request) and the session [Exec.Query_cache] (a completed
   answer is replayed for free). One table, keyed by
   (source, condition), shared by however many concurrently executing
   queries a serving layer multiplexes: the first query to need a
   selection pays for it, everyone whose need overlaps the request in
   (simulated) time joins it, and — when a TTL is set — everyone who
   arrives within [ttl] after the answer materialized reuses it as a
   slightly stale cached answer, with the staleness accounted.

   [ttl = None] reproduces the executor's historical behavior exactly:
   in-flight sharing only, completed answers are never replayed. That is
   what keeps a lone query's execution under a serving layer
   byte-identical to [Exec_async.run]. *)

open Fusion_data

type entry = { finish : float; answer : Item_set.t }

type stats = {
  lookups : int;
  inflight_hits : int;
  cached_hits : int;
  expirations : int;
  staleness_sum : float;
  staleness_max : float;
}

type t = {
  ttl : float option;
  keys : Intern.t; (* interns source names and condition texts *)
  table : (int * int, entry) Hashtbl.t; (* (source id, cond id) *)
  mutable lookups : int;
  mutable inflight_hits : int;
  mutable cached_hits : int;
  mutable expirations : int;
  mutable staleness_sum : float;
  mutable staleness_max : float;
}

type outcome =
  | Inflight of float * Item_set.t
  | Cached of float * Item_set.t
  | Miss

let create ?ttl () =
  (match ttl with
  | Some t when t < 0.0 -> invalid_arg "Answer_cache.create: negative ttl"
  | _ -> ());
  {
    ttl;
    keys = Intern.create ~name:"answer-cache-keys" ();
    table = Hashtbl.create 64;
    lookups = 0;
    inflight_hits = 0;
    cached_hits = 0;
    expirations = 0;
    staleness_sum = 0.0;
    staleness_max = 0.0;
  }

let ttl t = t.ttl

let clear t =
  Hashtbl.reset t.table;
  t.lookups <- 0;
  t.inflight_hits <- 0;
  t.cached_hits <- 0;
  t.expirations <- 0;
  t.staleness_sum <- 0.0;
  t.staleness_max <- 0.0

let stats t : stats =
  {
    lookups = t.lookups;
    inflight_hits = t.inflight_hits;
    cached_hits = t.cached_hits;
    expirations = t.expirations;
    staleness_sum = t.staleness_sum;
    staleness_max = t.staleness_max;
  }

(* The string pair is interned once; steady-state lookups hash two
   small ints instead of two strings. *)
let key t ~source ~cond =
  (Intern.intern t.keys (Value.String source), Intern.intern t.keys (Value.String cond))

let find t ~source ~cond ~ready =
  t.lookups <- t.lookups + 1;
  let key = key t ~source ~cond in
  match Hashtbl.find_opt t.table key with
  | None -> Miss
  | Some e when e.finish > ready ->
    t.inflight_hits <- t.inflight_hits + 1;
    Inflight (e.finish, e.answer)
  | Some e -> (
    match t.ttl with
    | Some ttl when ready -. e.finish <= ttl ->
      let staleness = ready -. e.finish in
      t.cached_hits <- t.cached_hits + 1;
      t.staleness_sum <- t.staleness_sum +. staleness;
      t.staleness_max <- Float.max t.staleness_max staleness;
      Cached (staleness, e.answer)
    | _ ->
      t.expirations <- t.expirations + 1;
      Hashtbl.remove t.table key;
      Miss)

let note t ~source ~cond ~finish answer =
  Hashtbl.replace t.table (key t ~source ~cond) { finish; answer }

let pp_stats ppf (s : stats) =
  Format.fprintf ppf
    "%d lookups: %d joined in flight, %d cached (mean staleness %.1f, max %.1f), %d expired"
    s.lookups s.inflight_hits s.cached_hits
    (if s.cached_hits > 0 then s.staleness_sum /. float_of_int s.cached_hits else 0.0)
    s.staleness_max s.expirations
