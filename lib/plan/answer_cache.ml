(* Cross-query answer sharing for selection queries.

   Generalizes two mechanisms that used to live inside a single run of
   the concurrent executor: the in-flight coalescer (a later step
   needing a selection another step has already put in flight joins the
   pending request) and the session [Exec.Query_cache] (a completed
   answer is replayed for free). One table, keyed by
   (source, condition), shared by however many concurrently executing
   queries a serving layer multiplexes: the first query to need a
   selection pays for it, everyone whose need overlaps the request in
   (simulated) time joins it, and — when a TTL is set — everyone who
   arrives within [ttl] after the answer materialized reuses it as a
   slightly stale cached answer, with the staleness accounted.

   [ttl = None] reproduces the executor's historical behavior exactly:
   in-flight sharing only, completed answers are never replayed. That is
   what keeps a lone query's execution under a serving layer
   byte-identical to [Exec_async.run].

   [versioned = true] switches staleness accounting from the clock to
   the source-version vector: every entry records the relation version
   its answer was computed at, deltas arriving at the mediator patch or
   invalidate entries through [apply_delta], and a version-matching
   lookup replays the answer with an exact staleness of zero — no TTL
   guessing. Version-mismatched entries (a delta that bypassed
   [apply_delta]) are invalidated on lookup rather than served. *)

open Fusion_data

type entry = { finish : float; answer : Item_set.t; version : int }

type stats = {
  lookups : int;
  inflight_hits : int;
  cached_hits : int;
  expirations : int;
  invalidated : int;
  patched : int;
  staleness_sum : float;
  staleness_max : float;
}

type t = {
  ttl : float option;
  versioned : bool;
  keys : Intern.t; (* interns source names and condition texts *)
  table : (int * int, entry) Hashtbl.t; (* (source id, cond id) *)
  mutable lookups : int;
  mutable inflight_hits : int;
  mutable cached_hits : int;
  mutable expirations : int;
  mutable invalidated : int;
  mutable patched : int;
  mutable staleness_sum : float;
  mutable staleness_max : float;
  mutable published : stats; (* last snapshot flushed to the registry *)
}

type outcome =
  | Inflight of float * Item_set.t
  | Cached of float * Item_set.t
  | Miss

let zero_stats =
  {
    lookups = 0;
    inflight_hits = 0;
    cached_hits = 0;
    expirations = 0;
    invalidated = 0;
    patched = 0;
    staleness_sum = 0.0;
    staleness_max = 0.0;
  }

let create ?ttl ?(versioned = false) () =
  (match ttl with
  | Some t when t < 0.0 -> invalid_arg "Answer_cache.create: negative ttl"
  | _ -> ());
  {
    ttl;
    versioned;
    keys = Intern.create ~name:"answer-cache-keys" ();
    table = Hashtbl.create 64;
    lookups = 0;
    inflight_hits = 0;
    cached_hits = 0;
    expirations = 0;
    invalidated = 0;
    patched = 0;
    staleness_sum = 0.0;
    staleness_max = 0.0;
    published = zero_stats;
  }

let ttl t = t.ttl
let versioned t = t.versioned

let clear t =
  Hashtbl.reset t.table;
  t.lookups <- 0;
  t.inflight_hits <- 0;
  t.cached_hits <- 0;
  t.expirations <- 0;
  t.invalidated <- 0;
  t.patched <- 0;
  t.staleness_sum <- 0.0;
  t.staleness_max <- 0.0;
  t.published <- zero_stats

let stats t : stats =
  {
    lookups = t.lookups;
    inflight_hits = t.inflight_hits;
    cached_hits = t.cached_hits;
    expirations = t.expirations;
    invalidated = t.invalidated;
    patched = t.patched;
    staleness_sum = t.staleness_sum;
    staleness_max = t.staleness_max;
  }

(* The string pair is interned once; steady-state lookups hash two
   small ints instead of two strings. *)
let key t ~source ~cond =
  (Intern.intern t.keys (Value.String source), Intern.intern t.keys (Value.String cond))

let cached_hit t staleness =
  t.cached_hits <- t.cached_hits + 1;
  t.staleness_sum <- t.staleness_sum +. staleness;
  t.staleness_max <- Float.max t.staleness_max staleness

let find t ~source ~cond ?version ~ready () =
  t.lookups <- t.lookups + 1;
  let key = key t ~source ~cond in
  match Hashtbl.find_opt t.table key with
  | None -> Miss
  | Some e when e.finish > ready ->
    t.inflight_hits <- t.inflight_hits + 1;
    Inflight (e.finish, e.answer)
  | Some e -> (
    match (t.versioned, version) with
    | true, Some v when v = e.version ->
      (* The entry provably reflects the source's current state: exact
         staleness zero, whatever the clock says. *)
      cached_hit t 0.0;
      Cached (0.0, e.answer)
    | true, Some _ ->
      (* A delta bypassed [apply_delta]; never serve a provably stale
         answer in versioned mode. *)
      t.invalidated <- t.invalidated + 1;
      Hashtbl.remove t.table key;
      Miss
    | _ -> (
      match t.ttl with
      | Some ttl when ready -. e.finish <= ttl ->
        let staleness = ready -. e.finish in
        cached_hit t staleness;
        Cached (staleness, e.answer)
      | _ ->
        t.expirations <- t.expirations + 1;
        Hashtbl.remove t.table key;
        Miss))

let note t ~source ~cond ~finish ?(version = 0) answer =
  Hashtbl.replace t.table (key t ~source ~cond) { finish; answer; version }

let apply_delta t ~source ~now ~version ~patch =
  let sid = Intern.intern t.keys (Value.String source) in
  let hits =
    Hashtbl.fold
      (fun ((s, _) as key) e acc -> if s = sid then (key, e) :: acc else acc)
      t.table []
  in
  List.iter
    (fun (((_, cid) as key), e) ->
      if e.finish > now then begin
        (* Still in flight: the pending answer was computed against the
           pre-delta base; joining it would hand out stale data. *)
        t.invalidated <- t.invalidated + 1;
        Hashtbl.remove t.table key
      end
      else
        let cond =
          match Intern.value t.keys cid with
          | Value.String c -> c
          | v -> Value.to_string v
        in
        match patch ~cond e.answer with
        | Some answer ->
          t.patched <- t.patched + 1;
          Hashtbl.replace t.table key { e with answer; version }
        | None ->
          t.invalidated <- t.invalidated + 1;
          Hashtbl.remove t.table key)
    hits

let publish_metrics t =
  Fusion_obs.Metrics.record (fun r ->
      let p = t.published in
      let c name now last =
        if now > last then
          Fusion_obs.Metrics.incr r ~by:(float_of_int (now - last)) name
      in
      let s = stats t in
      c "fusion_cache_lookups_total" s.lookups p.lookups;
      c "fusion_cache_inflight_hits_total" s.inflight_hits p.inflight_hits;
      c "fusion_cache_cached_hits_total" s.cached_hits p.cached_hits;
      c "fusion_cache_lookup_misses_total"
        (s.lookups - s.inflight_hits - s.cached_hits)
        (p.lookups - p.inflight_hits - p.cached_hits);
      c "fusion_cache_expired_total" s.expirations p.expirations;
      c "fusion_cache_invalidated_total" s.invalidated p.invalidated;
      c "fusion_cache_patched_total" s.patched p.patched;
      t.published <- s)

let pp_stats ppf (s : stats) =
  Format.fprintf ppf
    "%d lookups: %d joined in flight, %d cached (mean staleness %.1f, max %.1f), %d expired, %d invalidated, %d patched"
    s.lookups s.inflight_hits s.cached_hits
    (if s.cached_hits > 0 then s.staleness_sum /. float_of_int s.cached_hits else 0.0)
    s.staleness_max s.expirations s.invalidated s.patched
