(** Live concurrent plan execution.

    The sequential {!Exec} charges steps one after another, so a query's
    elapsed time equals its total cost. This executor instead runs the
    plan on a {!Fusion_rt.Runtime}: each source query is dispatched the
    moment the source queries feeding it complete, queries at different
    sources proceed concurrently, and queries at the same source queue
    FIFO — a slow mirror delays only the chains that depend on it. The
    result separates [total_cost] (work, identical to the sequential
    executor's) from [makespan] (response time on the runtime's clock).

    On the simulator backend, source queries are issued in plan order,
    so each source sees exactly the request sequence the sequential
    executor would send it. Answers, per-step costs and fault-injection
    draws therefore agree with {!Exec.run} under the same
    {!Exec.policy}; only the clock differs. On a real-clock backend
    ({!Fusion_rt.Runtime.domains}) the plan runs as a concurrent
    dataflow — one fibre per source query, synchronized through its
    inputs — and the clock is the wall; with deterministic sources the
    answer still equals the sequential executor's.

    {b Request coalescing.} When a step needs a selection that an
    earlier step has already put in flight (same source, same condition,
    not yet finished on the simulated clock), it joins the pending
    request instead of issuing its own: one request, one answer, shared.
    A semijoin can join an in-flight {e selection} on its condition and
    intersect the arriving answer with its probe set locally. Coalesced
    steps carry cost 0 and finish when the leader's request does; with a
    {!Exec.Query_cache} attached they are counted as hits, like a
    cached answer would be. *)

open Fusion_data
open Fusion_cond
open Fusion_source

type sched = {
  task : int;  (** dataflow node id, aligned with {!Parallel_exec.dataflow} *)
  server : int;  (** serving source index *)
  deps : int list;  (** dataflow node ids this query waited on *)
  dispatched : bool;
      (** [false] when the step was answered without occupying the
          source: a cache hit, or joining an in-flight request *)
}
(** Where a source-query step sat in the concurrent schedule. Local
    operations (union, intersection, ...) have no schedule slot. *)

type step = {
  op : Op.t;
  cost : float;  (** actual cost (work) of the step, 0 for local/coalesced ops *)
  result_size : int;
  start : float;  (** when the step began on the simulated clock *)
  finish : float;  (** when its result became available *)
  coalesced : bool;  (** answered by joining another step's in-flight request *)
  sched : sched option;  (** schedule slot, [None] for local operations *)
}

type result = {
  answer : Item_set.t;
  steps : step list;  (** in plan order *)
  total_cost : float;  (** sum of step costs — equals the sequential executor's *)
  makespan : float;  (** finish time of the last step: the response time *)
  busy : float array;  (** accumulated service time per source *)
  timeline : Fusion_net.Sim.timeline;
      (** the dispatched source queries, for {!Fusion_net.Sim.pp_gantt} *)
  failures : int;
  partial : bool;
}

val to_exec_steps : step list -> Exec.step list
(** Forgets the clock, for code that consumes the sequential step shape. *)

(** The incremental face of the executor, for a serving layer that
    multiplexes many queries onto one shared {!Fusion_rt.Runtime}
    network. An engine is a cursor over one plan: local operations are
    evaluated for free the instant their inputs are available, and the
    engine surfaces {e one} source query at a time — the next in plan
    order — for an external scheduler to {!dispatch} when it sees fit.

    Driving a single engine on a private network by dispatching each
    request as soon as it surfaces is exactly {!run}: same answers, same
    costs, same fault draws, same trace. That equivalence is the
    serving layer's correctness anchor. *)
module Engine : sig
  type request = {
    rq_op : Op.t;
    rq_server : int;  (** source index the query must be served by *)
    rq_ready : float;  (** instant its inputs are available *)
    rq_task : int;  (** timeline task id it will be dispatched under *)
  }

  type t

  val create :
    ?cache:Exec.Query_cache.t ->
    ?policy:Exec.policy ->
    ?deadline:float ->
    ?answers:Answer_cache.t ->
    ?offset:int ->
    ?base:float ->
    ?compiled:Plan_compile.t ->
    rt:Fusion_rt.Runtime.t ->
    sources:Source.t array ->
    conds:Cond.t array ->
    Plan.t ->
    t
  (** [answers] is the cross-query {!Answer_cache} shared with other
      engines on the same network (a private, TTL-less one if omitted —
      plain per-run request coalescing). [offset] shifts the engine's
      dataflow task ids so timelines of many engines never collide.
      [base] is the instant the query was admitted: no step starts
      before it. [compiled] is the {!Plan_compile} form of the same
      plan: local selections then reuse its persistent columnar scans
      (the serving layer passes one per cached plan). [cache],
      [policy], [deadline] as in {!run}. *)

  val pending : t -> request option
  (** Advances through local operations (evaluating them at their ready
      times) and returns the next source query awaiting dispatch, or
      [None] when the plan has finished. Repeated calls without an
      intervening {!dispatch} are cheap and return the same request. *)

  val dispatch : t -> step
  (** Executes the pending source query: consults the shared answer
      cache (join in flight / reuse cached / miss), performs the real
      source call with retries on a miss, and occupies the shared
      network. @raise Invalid_argument if no request is pending. *)

  val finished : t -> bool

  val task_count : t -> int
  (** Number of timeline task ids the engine will use — the next
      engine sharing the network should be created with [offset]
      advanced by this much. *)

  val steps : t -> step list
  (** Steps executed so far, in plan order. *)

  val answer : t -> Item_set.t
  (** @raise Invalid_argument if the plan has not finished. *)

  val failures : t -> int
  val partial : t -> bool
  val total_cost : t -> float

  val finish_time : t -> float
  (** Latest step finish so far ([base] when none executed). *)
end

val run :
  ?cache:Exec.Query_cache.t ->
  ?policy:Exec.policy ->
  ?deadline:float ->
  sources:Source.t array ->
  conds:Cond.t array ->
  Plan.t ->
  result
(** Executes the plan concurrently. [cache] and [policy] behave as in
    {!Exec.run} ([Exec.default_policy] if omitted). [deadline] (default
    [infinity]) is a per-query budget of simulated service time: once a
    source query's attempts have consumed that much, remaining retries
    are forfeited and the {!Exec.policy.on_exhausted} action applies —
    time already spent is still charged.
    @raise Exec.Runtime_error as {!Exec.run} does.
    @raise Source.Timeout under the [`Fail] policy. *)

val run_on :
  ?cache:Exec.Query_cache.t ->
  ?policy:Exec.policy ->
  ?deadline:float ->
  rt:Fusion_rt.Runtime.t ->
  sources:Source.t array ->
  conds:Cond.t array ->
  Plan.t ->
  result
(** {!run} on a caller-supplied runtime. On the simulator backend this
    is the oracle execution order (requests dispatched in plan order);
    on a real-clock backend the plan runs as a concurrent dataflow —
    one fibre per source query, an op waiting only for the in-flight
    producers of its own inputs — so [steps] come back in completion
    order and [busy]/[timeline] measure wall-clock seconds. The caller
    keeps ownership of [rt] (shut a domains runtime down when done). *)
