(** Live concurrent plan execution.

    The sequential {!Exec} charges steps one after another, so a query's
    elapsed time equals its total cost. This executor instead runs the
    plan on the discrete-event scheduler of {!Fusion_net.Sim}: each
    source query is dispatched the moment the source queries feeding it
    complete, queries at different sources proceed concurrently, and
    queries at the same source queue FIFO — a slow mirror delays only
    the chains that depend on it. The result separates [total_cost]
    (work, identical to the sequential executor's) from [makespan]
    (response time on the simulated clock).

    Source queries are issued in plan order, so each source sees exactly
    the request sequence the sequential executor would send it. Answers,
    per-step costs and fault-injection draws therefore agree with
    {!Exec.run} under the same {!Exec.policy}; only the clock differs.

    {b Request coalescing.} When a step needs a selection that an
    earlier step has already put in flight (same source, same condition,
    not yet finished on the simulated clock), it joins the pending
    request instead of issuing its own: one request, one answer, shared.
    A semijoin can join an in-flight {e selection} on its condition and
    intersect the arriving answer with its probe set locally. Coalesced
    steps carry cost 0 and finish when the leader's request does; with a
    {!Exec.Query_cache} attached they are counted as hits, like a
    cached answer would be. *)

open Fusion_data
open Fusion_cond
open Fusion_source

type sched = {
  task : int;  (** dataflow node id, aligned with {!Parallel_exec.dataflow} *)
  server : int;  (** serving source index *)
  deps : int list;  (** dataflow node ids this query waited on *)
  dispatched : bool;
      (** [false] when the step was answered without occupying the
          source: a cache hit, or joining an in-flight request *)
}
(** Where a source-query step sat in the concurrent schedule. Local
    operations (union, intersection, ...) have no schedule slot. *)

type step = {
  op : Op.t;
  cost : float;  (** actual cost (work) of the step, 0 for local/coalesced ops *)
  result_size : int;
  start : float;  (** when the step began on the simulated clock *)
  finish : float;  (** when its result became available *)
  coalesced : bool;  (** answered by joining another step's in-flight request *)
  sched : sched option;  (** schedule slot, [None] for local operations *)
}

type result = {
  answer : Item_set.t;
  steps : step list;  (** in plan order *)
  total_cost : float;  (** sum of step costs — equals the sequential executor's *)
  makespan : float;  (** finish time of the last step: the response time *)
  busy : float array;  (** accumulated service time per source *)
  timeline : Fusion_net.Sim.timeline;
      (** the dispatched source queries, for {!Fusion_net.Sim.pp_gantt} *)
  failures : int;
  partial : bool;
}

val to_exec_steps : step list -> Exec.step list
(** Forgets the clock, for code that consumes the sequential step shape. *)

val run :
  ?cache:Exec.Query_cache.t ->
  ?policy:Exec.policy ->
  ?deadline:float ->
  sources:Source.t array ->
  conds:Cond.t array ->
  Plan.t ->
  result
(** Executes the plan concurrently. [cache] and [policy] behave as in
    {!Exec.run} ([Exec.default_policy] if omitted). [deadline] (default
    [infinity]) is a per-query budget of simulated service time: once a
    source query's attempts have consumed that much, remaining retries
    are forfeited and the {!Exec.policy.on_exhausted} action applies —
    time already spent is still charged.
    @raise Exec.Runtime_error as {!Exec.run} does.
    @raise Source.Timeout under the [`Fail] policy. *)
