(* Plan fragments: what a coordinator ships to a mediator shard.

   Under merge-id hash partitioning every shard holds a horizontal
   slice of every source relation, so the *same* straight-line plan is
   a valid program at every shard — the fragment carries the plan plus
   the condition/source indexes it references, and the coordinator
   ∪-merges the per-shard answers. The serialized form reuses
   [Plan_text] with a one-line shard header, so fragments are auditable
   and wire-safe by construction. *)

open Fusion_data

type t = {
  shard : int;
  plan : Plan.t;
  conds_used : int list;
  sources_used : int list;
}

let indexes_of plan =
  let conds = ref [] and sources = ref [] in
  List.iter
    (fun (op : Op.t) ->
      match op with
      | Op.Select { cond; source; _ } ->
        conds := cond :: !conds;
        sources := source :: !sources
      | Op.Semijoin { cond; source; _ } ->
        conds := cond :: !conds;
        sources := source :: !sources
      | Op.Load { source; _ } -> sources := source :: !sources
      | Op.Local_select { cond; _ } -> conds := cond :: !conds
      | Op.Union _ | Op.Inter _ | Op.Diff _ -> ())
    (Plan.ops plan);
  (List.sort_uniq compare !conds, List.sort_uniq compare !sources)

let of_plan ~shard plan =
  if shard < 0 then invalid_arg "Fragment.of_plan: negative shard";
  let conds_used, sources_used = indexes_of plan in
  { shard; plan; conds_used; sources_used }

let header_prefix = "# shard "

let encode t = Printf.sprintf "%s%d\n%s" header_prefix t.shard (Plan_text.to_string t.plan)

let decode text =
  match String.index_opt text '\n' with
  | None -> Error "fragment: missing shard header"
  | Some i ->
    let first = String.trim (String.sub text 0 i) in
    let rest = String.sub text (i + 1) (String.length text - i - 1) in
    let plen = String.length header_prefix in
    if String.length first < plen || String.sub first 0 plen <> header_prefix then
      Error (Printf.sprintf "fragment: expected %S header, got %S" header_prefix first)
    else
      let shard_text = String.sub first plen (String.length first - plen) in
      (match int_of_string_opt shard_text with
      | None -> Error (Printf.sprintf "fragment: bad shard number %S" shard_text)
      | Some shard when shard < 0 -> Error "fragment: negative shard number"
      | Some shard -> (
        match Plan_text.of_string rest with
        | Error msg -> Error ("fragment: " ^ msg)
        | Ok plan -> Ok (of_plan ~shard plan)))

(* Serialize-then-parse: the identity when the fragment is wire-safe,
   an error otherwise. Coordinators route every fragment through this
   so a plan that cannot survive shipping is caught before dispatch. *)
let ship t = decode (encode t)

(* Disjoint slices make the gather step exact set union: an item's
   whole evidence lives on the shard its merge-id hashes to, so the
   per-shard answers partition the global answer. *)
let merge_answers = Item_set.union_list
