module Sim = Fusion_net.Sim
module Int_set = Set.Make (Int)

(* Dependencies of each variable's value, as the set of task ids whose
   completion makes the value available. Local operations are free and
   merely merge the dependencies of their inputs. *)
let dataflow plan =
  let var_deps : (string, Int_set.t) Hashtbl.t = Hashtbl.create 16 in
  let deps_of var = Option.value ~default:Int_set.empty (Hashtbl.find_opt var_deps var) in
  let next_task = ref 0 in
  let nodes = ref [] in
  List.iter
    (fun op ->
      let input_deps =
        List.fold_left (fun acc v -> Int_set.union acc (deps_of v)) Int_set.empty (Op.uses op)
      in
      match op with
      | Op.Select { dst; source; _ } | Op.Semijoin { dst; source; _ }
      | Op.Load { dst; source; _ } ->
        let id = !next_task in
        incr next_task;
        nodes := (op, source, Int_set.elements input_deps) :: !nodes;
        Hashtbl.replace var_deps dst (Int_set.singleton id)
      | Op.Local_select { dst; _ } | Op.Union { dst; _ } | Op.Inter { dst; _ }
      | Op.Diff { dst; _ } ->
        Hashtbl.replace var_deps dst input_deps)
    (Plan.ops plan);
  List.rev !nodes

let tasks_of plan (result : Exec.result) =
  if List.length (Plan.ops plan) <> List.length result.Exec.steps then
    invalid_arg "Parallel_exec: execution does not match the plan";
  let source_steps =
    List.filter (fun s -> Op.is_source_query s.Exec.op) result.Exec.steps
  in
  List.mapi
    (fun id ((_, server, deps), step) ->
      { Sim.id; server; duration = step.Exec.cost; deps })
    (List.combine (dataflow plan) source_steps)

let simulate ?(serialize_sources = true) ~n plan result =
  let tasks = tasks_of plan result in
  if serialize_sources then Sim.run ~servers:n tasks
  else
    (* Give every task its own server: pure dataflow critical path. *)
    let tasks = List.map (fun t -> { t with Sim.server = t.Sim.id }) tasks in
    Sim.run ~servers:(max 1 (List.length tasks)) tasks

let makespan ?serialize_sources ~n plan result =
  (simulate ?serialize_sources ~n plan result).Sim.makespan
