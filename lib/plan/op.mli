(** Plan operations.

    A plan is a straight-line sequence of these operations (Figures 2
    and 5 of the paper). Conditions and sources are referenced by index
    — [cond i] is the query's [c_{i+1}], [source j] the mediator's
    [R_{j+1}] — so plans are meaningful only relative to a query and a
    source list. Variables name intermediate item sets, or loaded
    relations for [Load]. *)

type t =
  | Select of { dst : string; cond : int; source : int }
      (** [X := sq(c, R)] — items of [R] satisfying [c] *)
  | Semijoin of { dst : string; cond : int; source : int; input : string }
      (** [X := sjq(c, R, Y)] — subset of [Y] satisfying [c] at [R] *)
  | Load of { dst : string; source : int }
      (** [L := lq(R)] — ship the whole relation (postoptimization) *)
  | Local_select of { dst : string; cond : int; input : string }
      (** [X := sq(c, L)] — free local filtering of a loaded relation *)
  | Union of { dst : string; args : string list }
  | Inter of { dst : string; args : string list }
  | Diff of { dst : string; left : string; right : string }
      (** [X := Y - Z] (postoptimization) *)

val dst : t -> string
(** The variable the operation binds. *)

val uses : t -> string list
(** Variables the operation reads. *)

val is_source_query : t -> bool
(** Whether the operation sends a query to a source (and therefore has a
    cost under the paper's model). *)

val name : t -> string
(** The operator mnemonic ([sq], [sjq], [lq], [lsq], [union], [inter],
    [diff]), as used in {!Plan_text} and trace span names. *)

val pp : ?source_name:(int -> string) -> Format.formatter -> t -> unit
(** Paper notation, e.g. [X21 := sjq(c2, R1, X1)]. [source_name]
    overrides the default [R<j+1>] naming. *)
