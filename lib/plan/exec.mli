(** Plan execution: the mediator's interpreter.

    Runs a plan against live sources, charging each source query its
    actual cost (a function of the real transfer sizes). Local set
    operations and local selections on loaded relations are free, per
    the cost model (Section 2.4). *)

open Fusion_data
open Fusion_cond
open Fusion_source

type step = {
  op : Op.t;
  cost : float;  (** actual cost of the step (0 for local operations) *)
  result_size : int;  (** cardinality of the bound item set / relation *)
}

type result = {
  answer : Item_set.t;
  steps : step list;  (** in execution order *)
  total_cost : float;  (** sum of the step costs, failed attempts included *)
  failures : int;  (** timed-out requests encountered (before retries) *)
  partial : bool;
      (** true when a step was abandoned after exhausting its retries in
          [`Partial] mode — the answer may miss items whose evidence
          lived at the unreachable source *)
}

exception Runtime_error of string
(** Undefined variable, kind mismatch, or out-of-range index. Running
    {!Plan.validate} first rules these out. *)

(** Session-level reuse of selection answers across plan executions.

    Mediators serve streams of fusion queries that share hot conditions
    (Section 5 points out the cost of repeatedly evaluating common
    subexpressions). The cache memoizes selection-query answers keyed by
    (source, condition); a later selection on the same key is answered
    locally for free, and a later {e semijoin} on the key is derived as
    [cached ∩ X], also for free. Semijoin answers are additionally
    memoized by (source, condition, probe set), so an exact replay of a
    plan never re-contacts the sources. *)
module Query_cache : sig
  type t

  val create : unit -> t
  val clear : t -> unit

  type stats = {
    hits : int;  (** operations answered from the cache *)
    misses : int;  (** selection queries that had to run (and filled it) *)
    saved_cost : float;
        (** what the hits would have cost at the sources, computed from
            each source's profile and the actual answer sizes *)
  }

  val stats : t -> stats

  (** {2 Executor-internal operations}

      The lookup/fill protocol shared by the sequential {!run} and the
      concurrent {!Exec_async.run}. Not meant for application code —
      going through these by hand desynchronizes the hit/miss
      statistics from any executor's accounting. *)

  val find : t -> Source.t -> Cond.t -> Item_set.t option
  val store : t -> Source.t -> Cond.t -> Item_set.t -> unit
  val find_sjq : t -> Source.t -> Cond.t -> Item_set.t -> Item_set.t option
  val store_sjq : t -> Source.t -> Cond.t -> Item_set.t -> Item_set.t -> unit

  (** Keyed variants for compiled plans ([Plan_compile]): same protocol,
      but the caller supplies the source name and rendered condition
      text, precomputed at plan-compile time instead of re-rendered per
      lookup. *)

  val find_keyed : t -> sname:string -> ctext:string -> Item_set.t option
  val store_keyed : t -> sname:string -> ctext:string -> Item_set.t -> unit
  val find_sjq_keyed : t -> sname:string -> ctext:string -> Item_set.t -> Item_set.t option

  val store_sjq_keyed :
    t -> sname:string -> ctext:string -> Item_set.t -> Item_set.t -> unit
  val record_hit : t -> Source.t -> items_sent:int -> items_received:int -> unit
  val record_hit_emulated : t -> Source.t -> bindings:int -> items_received:int -> unit
end

type policy = {
  retries : int;  (** extra attempts after the first timed-out one *)
  on_exhausted : [ `Fail | `Partial ];
      (** what to do when the retries run out: re-raise, or bind an
          empty result and mark the answer partial *)
}
(** The fault policy for sources that raise {!Source.Timeout}. Shared
    by this sequential executor and the concurrent {!Exec_async} so the
    two cannot drift apart. *)

val default_policy : policy
(** No retries, [`Fail]. *)

val run :
  ?cache:Query_cache.t -> ?policy:policy ->
  sources:Source.t array -> conds:Cond.t array -> Plan.t -> result
(** Executes the plan. With [cache], selection answers are reused as
    described above; cached steps appear in [steps] with cost 0.

    Failure policy ([default_policy] if omitted): each source query is
    retried up to [policy.retries] times; when retries are exhausted,
    [`Fail] re-raises while [`Partial] binds an empty result and marks
    the answer {!result.partial}. Every attempt's cost — including
    timed-out ones — is charged to the step. *)
