(** Plan fragments: the unit a coordinator scatters to mediator shards.

    Under merge-id hash partitioning ({!Fusion_dist.Partition} builds
    the slices) every shard holds a horizontal slice of every source
    relation, so one straight-line plan is a valid program at every
    shard. A fragment pairs the plan with the shard it is destined for
    and the condition/source indexes it references; the coordinator
    {!merge_answers}s the per-shard item sets back into the global
    answer. *)

type t = {
  shard : int;  (** destination shard *)
  plan : Plan.t;
  conds_used : int list;  (** condition indexes the plan references, sorted *)
  sources_used : int list;  (** source indexes the plan references, sorted *)
}

val of_plan : shard:int -> Plan.t -> t
(** Extracts the referenced indexes. @raise Invalid_argument on a
    negative shard. *)

val encode : t -> string
(** One [# shard N] header line followed by the {!Plan_text} form. *)

val decode : string -> (t, string) result
(** Inverse of {!encode}. *)

val ship : t -> (t, string) result
(** [decode (encode t)] — the round trip a fragment takes over the
    wire. The identity for any fragment built by {!of_plan}; routing
    dispatch through it guards that fragments stay wire-safe. *)

val merge_answers : Fusion_data.Item_set.t list -> Fusion_data.Item_set.t
(** The gather step: set union. Exact because hash-partitioned slices
    are disjoint on merge ids — each item's whole evidence lives on one
    shard, so per-shard answers partition the global answer. *)
