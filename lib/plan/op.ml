type t =
  | Select of { dst : string; cond : int; source : int }
  | Semijoin of { dst : string; cond : int; source : int; input : string }
  | Load of { dst : string; source : int }
  | Local_select of { dst : string; cond : int; input : string }
  | Union of { dst : string; args : string list }
  | Inter of { dst : string; args : string list }
  | Diff of { dst : string; left : string; right : string }

let dst = function
  | Select { dst; _ }
  | Semijoin { dst; _ }
  | Load { dst; _ }
  | Local_select { dst; _ }
  | Union { dst; _ }
  | Inter { dst; _ }
  | Diff { dst; _ } -> dst

let uses = function
  | Select _ | Load _ -> []
  | Semijoin { input; _ } | Local_select { input; _ } -> [ input ]
  | Union { args; _ } | Inter { args; _ } -> args
  | Diff { left; right; _ } -> [ left; right ]

let is_source_query = function
  | Select _ | Semijoin _ | Load _ -> true
  | Local_select _ | Union _ | Inter _ | Diff _ -> false

(* The operator mnemonic, as used in Plan_text and trace span names. *)
let name = function
  | Select _ -> "sq"
  | Semijoin _ -> "sjq"
  | Load _ -> "lq"
  | Local_select _ -> "lsq"
  | Union _ -> "union"
  | Inter _ -> "inter"
  | Diff _ -> "diff"

let pp ?source_name ppf op =
  let rname j =
    match source_name with Some f -> f j | None -> Printf.sprintf "R%d" (j + 1)
  in
  let pp_args ppf (sep, args) =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf " %s " sep)
      Format.pp_print_string ppf args
  in
  match op with
  | Select { dst; cond; source } ->
    Format.fprintf ppf "%s := sq(c%d, %s)" dst (cond + 1) (rname source)
  | Semijoin { dst; cond; source; input } ->
    Format.fprintf ppf "%s := sjq(c%d, %s, %s)" dst (cond + 1) (rname source) input
  | Load { dst; source } -> Format.fprintf ppf "%s := lq(%s)" dst (rname source)
  | Local_select { dst; cond; input } ->
    Format.fprintf ppf "%s := sq(c%d, %s)" dst (cond + 1) input
  | Union { dst; args } -> Format.fprintf ppf "%s := %a" dst pp_args ("∪", args)
  | Inter { dst; args } -> Format.fprintf ppf "%s := %a" dst pp_args ("∩", args)
  | Diff { dst; left; right } -> Format.fprintf ppf "%s := %s - %s" dst left right
