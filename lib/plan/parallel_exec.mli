(** Parallel plan execution on the discrete-event simulator.

    Extracts the real dataflow dependencies of a plan (a source query
    depends on every earlier source query feeding its input variable,
    through any chain of free local operations) and replays an
    execution's actual step costs as service times on
    {!Fusion_net.Sim}. Unlike the analytic {!Response_time} model this
    works for {e any} plan — including SJA+ plans with difference
    chains and loads — and can model autonomous sources that serve one
    query at a time. *)

val dataflow : Plan.t -> (Op.t * int * int list) list
(** The plan's source-query dependency DAG, computed from the operations
    alone (no execution needed): one [(op, source, deps)] node per
    source query, in operation order. Node ids are positions in this
    list; [deps] are the ids of the source queries whose results feed
    the node's inputs through any chain of free local operations. This
    is the analysis both the replay below and the live
    {!Exec_async} executor schedule from. *)

val tasks_of : Plan.t -> Exec.result -> Fusion_net.Sim.task list
(** One task per source query, in operation order; task ids are the
    positions of the queries among the plan's source queries, durations
    the execution's actual step costs. *)

val simulate : ?serialize_sources:bool -> n:int -> Plan.t -> Exec.result ->
  Fusion_net.Sim.timeline
(** [serialize_sources] (default [true]): a source answers one query at
    a time; with [false], sources are infinitely concurrent and the
    makespan equals the critical path through the dataflow. [n] is the
    number of sources. *)

val makespan : ?serialize_sources:bool -> n:int -> Plan.t -> Exec.result -> float
