open Fusion_data
open Fusion_cond
open Fusion_source
module Trace = Fusion_obs.Trace
module Metrics = Fusion_obs.Metrics

type step = { op : Op.t; cost : float; result_size : int }

type result = {
  answer : Item_set.t;
  steps : step list;
  total_cost : float;
  failures : int;
  partial : bool;
}

exception Runtime_error of string

module Query_cache = struct
  type stats = { hits : int; misses : int; saved_cost : float }

  type t = {
    keys : Intern.t; (* interns source names and condition texts *)
    answers : (int * int, Item_set.t) Hashtbl.t; (* (source id, cond id) *)
    semijoins : (int * int * int, (Item_set.t * Item_set.t) list) Hashtbl.t;
        (* (source id, cond id, probe digest) -> [(probe, answer)] *)
    mutable hits : int;
    mutable misses : int;
    mutable saved_cost : float;
  }

  let create () =
    {
      keys = Intern.create ~name:"query-cache-keys" ();
      answers = Hashtbl.create 32;
      semijoins = Hashtbl.create 32;
      hits = 0;
      misses = 0;
      saved_cost = 0.0;
    }

  let clear t =
    Hashtbl.reset t.answers;
    Hashtbl.reset t.semijoins;
    t.hits <- 0;
    t.misses <- 0;
    t.saved_cost <- 0.0

  let stats t = { hits = t.hits; misses = t.misses; saved_cost = t.saved_cost }

  (* Cache keys are interned: repeated lookups for the same (source,
     cond) hash two short strings once and small ints afterwards. The
     [_keyed] variants take the rendered condition text so compiled
     plans ({!Plan_compile}) can precompute it instead of re-rendering
     per lookup. *)
  let key_of t ~sname ~ctext =
    ( Intern.intern t.keys (Value.String sname),
      Intern.intern t.keys (Value.String ctext) )

  let key t source cond =
    key_of t ~sname:(Source.name source) ~ctext:(Cond.to_string cond)

  let find_keyed t ~sname ~ctext = Hashtbl.find_opt t.answers (key_of t ~sname ~ctext)

  let store_keyed t ~sname ~ctext answer =
    t.misses <- t.misses + 1;
    Hashtbl.replace t.answers (key_of t ~sname ~ctext) answer

  let find t source cond = Hashtbl.find_opt t.answers (key t source cond)

  let store t source cond answer =
    t.misses <- t.misses + 1;
    Hashtbl.replace t.answers (key t source cond) answer

  (* Order-independent digest of a probe set over its interned ids;
     equality is confirmed on the stored probe, so collisions only cost
     a comparison. *)
  let digest probe = Item_set.hash probe

  let sjq_key_of t ~sname ~ctext probe =
    let sid, cid = key_of t ~sname ~ctext in
    (sid, cid, digest probe)

  let find_sjq_keyed t ~sname ~ctext probe =
    match Hashtbl.find_opt t.semijoins (sjq_key_of t ~sname ~ctext probe) with
    | None -> None
    | Some entries ->
      List.find_map
        (fun (p, answer) -> if Item_set.equal p probe then Some answer else None)
        entries

  let store_sjq_keyed t ~sname ~ctext probe answer =
    t.misses <- t.misses + 1;
    let key = sjq_key_of t ~sname ~ctext probe in
    let existing = Option.value ~default:[] (Hashtbl.find_opt t.semijoins key) in
    Hashtbl.replace t.semijoins key ((probe, answer) :: existing)

  let find_sjq t source cond probe =
    find_sjq_keyed t ~sname:(Source.name source) ~ctext:(Cond.to_string cond) probe

  let store_sjq t source cond probe answer =
    store_sjq_keyed t ~sname:(Source.name source) ~ctext:(Cond.to_string cond) probe
      answer

  (* What the operation would have cost at the source, from its profile
     and the actual sizes involved. Mirrors the wrapper's charging. *)
  let record_hit t source ~items_sent ~items_received =
    let p = Source.profile source in
    t.hits <- t.hits + 1;
    t.saved_cost <-
      t.saved_cost
      +. p.Fusion_net.Profile.request_overhead
      +. (p.Fusion_net.Profile.send_per_item *. float_of_int items_sent)
      +. (p.Fusion_net.Profile.recv_per_item *. float_of_int items_received)

  let record_hit_emulated t source ~bindings ~items_received =
    let p = Fusion_source.Source.profile source in
    t.hits <- t.hits + 1;
    t.saved_cost <-
      t.saved_cost
      +. (float_of_int bindings
          *. (p.Fusion_net.Profile.request_overhead +. p.Fusion_net.Profile.send_per_item))
      +. (p.Fusion_net.Profile.recv_per_item *. float_of_int items_received)
end

type binding = Items of Item_set.t | Loaded of Relation.t

type policy = { retries : int; on_exhausted : [ `Fail | `Partial ] }

let default_policy = { retries = 0; on_exhausted = `Fail }

let run ?cache ?(policy = default_policy) ~sources ~conds plan =
  let { retries; on_exhausted } = policy in
  let env : (string, binding) Hashtbl.t = Hashtbl.create 16 in
  let failures = ref 0 in
  let partial = ref false in
  let metered_cost () =
    Array.fold_left
      (fun acc s -> acc +. (Source.totals s).Fusion_net.Meter.cost)
      0.0 sources
  in
  let items var =
    match Hashtbl.find_opt env var with
    | Some (Items s) -> s
    | Some (Loaded _) -> raise (Runtime_error (var ^ " is a loaded relation, not an item set"))
    | None -> raise (Runtime_error ("undefined variable " ^ var))
  in
  let loaded var =
    match Hashtbl.find_opt env var with
    | Some (Loaded r) -> r
    | Some (Items _) -> raise (Runtime_error (var ^ " is an item set, not a loaded relation"))
    | None -> raise (Runtime_error ("undefined variable " ^ var))
  in
  let source j =
    if j < 0 || j >= Array.length sources then
      raise (Runtime_error (Printf.sprintf "source index %d out of range" j));
    sources.(j)
  in
  let cond i =
    if i < 0 || i >= Array.length conds then
      raise (Runtime_error (Printf.sprintf "condition index %d out of range" i));
    conds.(i)
  in
  (* Mark a cacheable step's outcome on its span and in the metrics. *)
  let cache_outcome ctx hit =
    if cache <> None then begin
      Trace.attr ctx "cache" (Trace.Str (if hit then "hit" else "miss"));
      Metrics.record (fun r ->
          Metrics.incr r
            (if hit then "fusion_cache_hits_total" else "fusion_cache_misses_total"))
    end
  in
  let exec_op ctx (op : Op.t) =
    match op with
    | Select { dst; cond = c; source = j } -> (
      let s = source j and condition = cond c in
      let cached = Option.bind cache (fun t -> Query_cache.find t s condition) in
      match cached with
      | Some answer ->
        Option.iter
          (fun t ->
            Query_cache.record_hit t s ~items_sent:0
              ~items_received:(Item_set.cardinal answer))
          cache;
        cache_outcome ctx true;
        Hashtbl.replace env dst (Items answer);
        (0.0, Item_set.cardinal answer)
      | None ->
        let answer, cost = Source.select_query s condition in
        Option.iter (fun t -> Query_cache.store t s condition answer) cache;
        cache_outcome ctx false;
        Hashtbl.replace env dst (Items answer);
        (cost, Item_set.cardinal answer))
    | Semijoin { dst; cond = c; source = j; input } -> (
      let s = source j and condition = cond c in
      let probe = items input in
      let cached =
        match Option.bind cache (fun t -> Query_cache.find t s condition) with
        | Some full -> Some (Item_set.inter full probe)
        | None -> Option.bind cache (fun t -> Query_cache.find_sjq t s condition probe)
      in
      match cached with
      | Some answer ->
        (* Either derived from a cached selection (sjq = sq ∩ X) or an
           exact replay of a previous semijoin. *)
        Option.iter
          (fun t ->
            let received = Item_set.cardinal answer in
            if (Source.capability s).Capability.native_semijoin then
              Query_cache.record_hit t s ~items_sent:(Item_set.cardinal probe)
                ~items_received:received
            else
              Query_cache.record_hit_emulated t s ~bindings:(Item_set.cardinal probe)
                ~items_received:received)
          cache;
        cache_outcome ctx true;
        Hashtbl.replace env dst (Items answer);
        (0.0, Item_set.cardinal answer)
      | None ->
        let answer, cost = Source.semijoin_query s condition probe in
        Option.iter (fun t -> Query_cache.store_sjq t s condition probe answer) cache;
        cache_outcome ctx false;
        Hashtbl.replace env dst (Items answer);
        (cost, Item_set.cardinal answer))
    | Load { dst; source = j } ->
      let relation, cost = Source.load_query (source j) in
      Hashtbl.replace env dst (Loaded relation);
      (cost, Relation.cardinality relation)
    | Local_select { dst; cond = c; input } ->
      let relation = loaded input in
      (* Interpreted row path, with attribute offsets resolved once per
         condition; [Plan_compile] is the columnar fast path. *)
      let pred = Cond.compile (Relation.schema relation) (cond c) in
      let answer = Relation.select_items relation pred in
      Hashtbl.replace env dst (Items answer);
      (0.0, Item_set.cardinal answer)
    | Union { dst; args } ->
      let answer = Item_set.union_list (List.map items args) in
      Hashtbl.replace env dst (Items answer);
      (0.0, Item_set.cardinal answer)
    | Inter { dst; args } ->
      let answer = Item_set.inter_list (List.map items args) in
      Hashtbl.replace env dst (Items answer);
      (0.0, Item_set.cardinal answer)
    | Diff { dst; left; right } ->
      let answer = Item_set.diff (items left) (items right) in
      Hashtbl.replace env dst (Items answer);
      (0.0, Item_set.cardinal answer)
  in
  (* Source queries retry on timeouts; their step cost is the meter
     delta, which includes the failed attempts' overhead. *)
  let exec_with_retries ctx (op : Op.t) =
    if not (Op.is_source_query op) then exec_op ctx op
    else begin
      let before = metered_cost () in
      let rec attempt budget =
        match exec_op ctx op with
        | _, result_size -> Some result_size
        | exception Source.Timeout _ ->
          incr failures;
          if budget > 0 then attempt (budget - 1)
          else if on_exhausted = `Fail then raise (Source.Timeout (Op.dst op))
          else begin
            partial := true;
            (* Bind a harmless empty value so the plan can continue. *)
            (match op with
            | Select { dst; _ } | Semijoin { dst; _ } ->
              Hashtbl.replace env dst (Items Item_set.empty)
            | Load { dst; source = j } ->
              Hashtbl.replace env dst
                (Loaded
                   (Relation.create
                      ~name:(Source.name sources.(j))
                      (Source.schema sources.(j))))
            | _ -> assert false);
            None
          end
      in
      let result_size = attempt retries in
      (metered_cost () -. before, Option.value ~default:0 result_size)
    end
  in
  let steps =
    List.map
      (fun op ->
        let cost, result_size =
          Trace.span Trace.Step (Op.name op) (fun ctx ->
              let failures_before = !failures in
              let cost, result_size = exec_with_retries ctx op in
              if Trace.active ctx then begin
                Trace.attrs ctx
                  [
                    ("dst", Trace.Str (Op.dst op));
                    ("cost", Trace.Float cost);
                    ("result_size", Trace.Int result_size);
                  ];
                if !failures > failures_before then
                  Trace.attr ctx "timeouts" (Trace.Int (!failures - failures_before))
              end;
              (cost, result_size))
        in
        { op; cost; result_size })
      (Plan.ops plan)
  in
  {
    answer = items (Plan.output plan);
    steps;
    total_cost = List.fold_left (fun acc s -> acc +. s.cost) 0.0 steps;
    failures = !failures;
    partial = !partial;
  }
