(** Compiled plans: the mediator's specialized executor.

    [compile] specializes one optimized plan DAG
    ([Sq]/[Sjq]/[∪]/[∩]/[−]/[Load]/[Local_select]) against its sources
    and conditions: variables become integer slots in a reusable frame,
    cache keys and condition texts are rendered once, and every local
    selection becomes a {!Fusion_cond.Cond_vec} columnar scan whose
    compiled form persists across runs. Re-running the compiled plan in
    steady state allocates (almost) only the answer sets — no
    environment hashing, no per-tuple materialization, no per-run
    condition work.

    [run] has exactly {!Exec.run}'s observable semantics — answers,
    step list, costs, retry/partial policy, cache protocol and hit/miss
    accounting, trace spans — property-tested equal over random plan
    DAGs. [answer] is the steady-state serving entry: same execution,
    but skips materializing the step list.

    A compiled plan holds mutable scratch (the slot frame and scan
    buffers): run each value from one engine at a time. *)

open Fusion_data
open Fusion_source

type t

val compile :
  sources:Source.t array -> conds:Fusion_cond.Cond.t array -> Plan.t -> (t, string) result
(** Validates the plan (so slot resolution cannot fail at run time) and
    specializes it. *)

val plan : t -> Plan.t
val sources : t -> Source.t array

val run : ?cache:Exec.Query_cache.t -> ?policy:Exec.policy -> t -> Exec.result
(** Executes the compiled plan; equivalent to [Exec.run] on the
    underlying plan, sources and conditions. *)

val answer : ?cache:Exec.Query_cache.t -> ?policy:Exec.policy -> t -> Item_set.t
(** Like {!run}, returning only the answer and skipping step-list
    construction — the minimal-allocation serving loop. *)

val local_select : t -> Op.t -> Relation.t -> Item_set.t option
(** [local_select t op rel] answers a [Local_select] op of the compiled
    plan (matched by physical identity) with the compiled columnar
    scan, against the given loaded relation. [None] when [op] is not
    one of this plan's local selections — callers fall back to their
    own evaluation. Used by [Exec_async] engines created with a
    compiled plan. *)
