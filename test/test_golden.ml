(* Golden-output regression tests: the exact renderings of the DMV
   example's (Figure 1) SJA+ and Filter plans through Plan_text,
   Plan_dot and Explain. Any intentional change to these formats should
   update the literals below — the point is that such changes are
   explicit, reviewed diffs rather than silent drift.

   The literals were generated from this very code path; regenerate by
   printing the corresponding [to_string]/[pp] output for
   [Workload.fig1 ()]. *)

open Fusion_core
open Fusion_plan
module Workload = Fusion_workload.Workload

let sja_plus_text = "L3 := lq(R3)\nL2 := lq(R2)\nL1 := lq(R1)\nX1_1 := lsq(c1, L1)\nX1_2 := lsq(c1, L2)\nX1_3 := lsq(c1, L3)\nX1 := union(X1_1, X1_2, X1_3)\nX2_1 := lsq(c2, L1)\nS2 := union(X2_1)\nD2_1 := diff(X1, S2)\nX2_2_t := lsq(c2, L2)\nX2_2 := inter(X2_2_t, D2_1)\nD2_2 := diff(D2_1, X2_2)\nX2_3_t := lsq(c2, L3)\nX2_3 := inter(X2_3_t, D2_2)\nU2 := union(X2_1, X2_2, X2_3)\nX2 := inter(X1, U2)\nanswer X2\n"

let filter_text = "X1_1 := sq(c1, R1)\nX1_2 := sq(c1, R2)\nX1_3 := sq(c1, R3)\nX1 := union(X1_1, X1_2, X1_3)\nX2_1 := sq(c2, R1)\nX2_2 := sq(c2, R2)\nX2_3 := sq(c2, R3)\nU2 := union(X2_1, X2_2, X2_3)\nX2 := inter(X1, U2)\nanswer X2\n"

let sja_plus_dot = "digraph plan {\n  rankdir=TB;\n  node [fontsize=11];\n  n0 [label=\"L3 := lq(R3)\", shape=box3d];\n  n1 [label=\"L2 := lq(R2)\", shape=box3d];\n  n2 [label=\"L1 := lq(R1)\", shape=box3d];\n  n3 [label=\"X1_1 := sq(c1, local)\", shape=ellipse];\n  n2 -> n3;\n  n4 [label=\"X1_2 := sq(c1, local)\", shape=ellipse];\n  n1 -> n4;\n  n5 [label=\"X1_3 := sq(c1, local)\", shape=ellipse];\n  n0 -> n5;\n  n6 [label=\"X1 := \226\136\170\", shape=ellipse];\n  n3 -> n6;\n  n4 -> n6;\n  n5 -> n6;\n  n7 [label=\"X2_1 := sq(c2, local)\", shape=ellipse];\n  n2 -> n7;\n  n8 [label=\"S2 := \226\136\170\", shape=ellipse];\n  n7 -> n8;\n  n9 [label=\"D2_1 := \226\136\146\", shape=ellipse];\n  n6 -> n9;\n  n8 -> n9;\n  n10 [label=\"X2_2_t := sq(c2, local)\", shape=ellipse];\n  n1 -> n10;\n  n11 [label=\"X2_2 := \226\136\169\", shape=ellipse];\n  n10 -> n11;\n  n9 -> n11;\n  n12 [label=\"D2_2 := \226\136\146\", shape=ellipse];\n  n9 -> n12;\n  n11 -> n12;\n  n13 [label=\"X2_3_t := sq(c2, local)\", shape=ellipse];\n  n0 -> n13;\n  n14 [label=\"X2_3 := \226\136\169\", shape=ellipse];\n  n13 -> n14;\n  n12 -> n14;\n  n15 [label=\"U2 := \226\136\170\", shape=ellipse];\n  n7 -> n15;\n  n11 -> n15;\n  n14 -> n15;\n  n16 [label=\"X2 := \226\136\169\", shape=ellipse];\n  n6 -> n16;\n  n15 -> n16;\n  answer [shape=doublecircle, label=\"answer\"];\n  n16 -> answer;\n}\n"

let sja_plus_explain = " 1) L3 := lq(R3)                           cost     74.0 /    74.0   rows      3.0 /     3\n 2) L2 := lq(R2)                           cost     74.0 /    74.0   rows      3.0 /     3\n 3) L1 := lq(R1)                           cost     74.0 /    74.0   rows      3.0 /     3\n 4) X1_1 := sq(c1, L1)                     cost      0.0 /     0.0   rows      2.0 /     2\n 5) X1_2 := sq(c1, L2)                     cost      0.0 /     0.0   rows      1.0 /     1\n 6) X1_3 := sq(c1, L3)                     cost      0.0 /     0.0   rows      0.0 /     0\n 7) X1 := X1_1 \226\136\170 X1_2 \226\136\170 X1_3           cost      0.0 /     0.0   rows      3.0 /     3\n 8) X2_1 := sq(c2, L1)                     cost      0.0 /     0.0   rows      1.0 /     1\n 9) S2 := X2_1                             cost      0.0 /     0.0   rows      1.0 /     1\n10) D2_1 := X1 - S2                        cost      0.0 /     0.0   rows      3.0 /     2\n11) X2_2_t := sq(c2, L2)                   cost      0.0 /     0.0   rows      2.0 /     2\n12) X2_2 := X2_2_t \226\136\169 D2_1                cost      0.0 /     0.0   rows      0.0 /     1\n13) D2_2 := D2_1 - X2_2                    cost      0.0 /     0.0   rows      3.0 /     1\n14) X2_3_t := sq(c2, L3)                   cost      0.0 /     0.0   rows      2.0 /     2\n15) X2_3 := X2_3_t \226\136\169 D2_2                cost      0.0 /     0.0   rows      0.0 /     0\n16) U2 := X2_1 \226\136\170 X2_2 \226\136\170 X2_3           cost      0.0 /     0.0   rows      0.0 /     2\n17) X2 := X1 \226\136\169 U2                        cost      0.0 /     0.0   rows      0.0 /     2\ntotal                                      222.0 /   222.0"

let fig1_env () =
  let instance = Workload.fig1 () in
  let env =
    Opt_env.create ~universe:instance.Workload.spec.Workload.universe
      instance.Workload.sources instance.Workload.query
  in
  (instance, env)

let plan_of env algo = (Optimizer.optimize algo env).Optimized.plan

let test_plan_text_golden () =
  let _, env = fig1_env () in
  Alcotest.(check string) "sja+ plan text" sja_plus_text
    (Plan_text.to_string (plan_of env Optimizer.Sja_plus));
  Alcotest.(check string) "filter plan text" filter_text
    (Plan_text.to_string (plan_of env Optimizer.Filter))

let test_plan_dot_golden () =
  let _, env = fig1_env () in
  Alcotest.(check string) "sja+ dot" sja_plus_dot
    (Plan_dot.to_string (plan_of env Optimizer.Sja_plus))

let test_explain_golden () =
  let instance, env = fig1_env () in
  let plan = plan_of env Optimizer.Sja_plus in
  let result = Helpers.execute_plan instance plan in
  let explain =
    Explain.analyze ~model:env.Opt_env.model ~est:env.Opt_env.est
      ~sources:env.Opt_env.sources ~conds:env.Opt_env.conds plan result
  in
  Alcotest.(check string) "sja+ explain" sja_plus_explain
    (Format.asprintf "%a" (Explain.pp ?source_name:None) explain)

(* The golden plan text is not just stable — it still parses back to
   the plan it came from. *)
let test_golden_text_reparses () =
  let _, env = fig1_env () in
  List.iter
    (fun (label, text, algo) ->
      let plan = Helpers.check_ok (Plan_text.of_string text) in
      Alcotest.(check bool) label true (plan = plan_of env algo))
    [
      ("sja+ reparses", sja_plus_text, Optimizer.Sja_plus);
      ("filter reparses", filter_text, Optimizer.Filter);
    ]

(* --- exporter goldens ----------------------------------------------------

   A tiny deterministic two-step trace (fixed clock, hand-set schedule
   attributes) and metrics registry, rendered through the Chrome
   trace-event and Prometheus exporters. As above: format changes must
   show up as explicit diffs to these literals. *)

module Trace = Fusion_obs.Trace
module Metrics = Fusion_obs.Metrics
module Analyze = Fusion_obs.Analyze

let golden_spans () =
  let c = Trace.create ~clock:(fun () -> 0.0) () in
  Trace.with_collector c (fun () ->
      Trace.span Trace.Run "mediator.run" (fun ctx ->
          Trace.attr ctx "algo" (Trace.Str "sja+");
          Trace.span Trace.Step "sq" (fun ctx ->
              Trace.charge ctx 10.0;
              Trace.attrs ctx
                [
                  ("dst", Trace.Str "X1");
                  ("cost", Trace.Float 10.0);
                  ("t_start", Trace.Float 0.0);
                  ("t_finish", Trace.Float 10.0);
                  ("task", Trace.Int 0);
                  ("server", Trace.Int 0);
                  ("deps", Trace.Str "");
                  ("dispatched", Trace.Bool true);
                ]);
          Trace.span Trace.Step "sjq" (fun ctx ->
              Trace.charge ctx 5.0;
              Trace.attrs ctx
                [
                  ("dst", Trace.Str "X2");
                  ("cost", Trace.Float 5.0);
                  ("t_start", Trace.Float 10.0);
                  ("t_finish", Trace.Float 15.0);
                  ("task", Trace.Int 1);
                  ("server", Trace.Int 1);
                  ("deps", Trace.Str "0");
                  ("dispatched", Trace.Bool true);
                ])));
  Trace.spans c

let golden_registry () =
  let r = Metrics.create () in
  Metrics.incr r ~labels:[ ("source", "R1"); ("op", "sq") ] "fusion_requests_total";
  Metrics.incr r ~labels:[ ("source", "R1"); ("op", "sq") ] "fusion_requests_total";
  Metrics.incr r ~labels:[ ("source", "R2"); ("op", "sjq") ] "fusion_requests_total";
  Metrics.gauge r "fusion_sources" 2.0;
  Metrics.observe r ~spec:{ Metrics.lo = 0; hi = 16; buckets = 4 } "fusion_answer_size" 3;
  Metrics.observe r ~spec:{ Metrics.lo = 0; hi = 16; buckets = 4 } "fusion_answer_size" 13;
  r

let chrome_golden = "{\"traceEvents\":[{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{\"name\":\"cost clock\"}},{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"spans\"}},{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"simulated schedule\"}},{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"R1\"}},{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"R2\"}},{\"name\":\"mediator.run\",\"cat\":\"run\",\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":0.0,\"dur\":15.0,\"args\":{\"span\":0,\"algo\":\"sja+\"}},{\"name\":\"sq\",\"cat\":\"step\",\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":0.0,\"dur\":10.0,\"args\":{\"span\":1,\"parent\":0,\"dst\":\"X1\",\"cost\":10.0,\"t_start\":0.0,\"t_finish\":10.0,\"task\":0,\"server\":0,\"deps\":\"\",\"dispatched\":true}},{\"name\":\"sjq\",\"cat\":\"step\",\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":10.0,\"dur\":5.0,\"args\":{\"span\":2,\"parent\":0,\"dst\":\"X2\",\"cost\":5.0,\"t_start\":10.0,\"t_finish\":15.0,\"task\":1,\"server\":1,\"deps\":\"0\",\"dispatched\":true}},{\"name\":\"X1 := sq\",\"cat\":\"schedule\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":0.0,\"dur\":10.0,\"args\":{\"span\":1,\"parent\":0,\"dst\":\"X1\",\"cost\":10.0,\"t_start\":0.0,\"t_finish\":10.0,\"task\":0,\"server\":0,\"deps\":\"\",\"dispatched\":true}},{\"name\":\"X2 := sjq\",\"cat\":\"schedule\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":10.0,\"dur\":5.0,\"args\":{\"span\":2,\"parent\":0,\"dst\":\"X2\",\"cost\":5.0,\"t_start\":10.0,\"t_finish\":15.0,\"task\":1,\"server\":1,\"deps\":\"0\",\"dispatched\":true}}],\"displayTimeUnit\":\"ms\"}"

let prom_golden =
  "# TYPE fusion_requests_total counter\n\
   fusion_requests_total{op=\"sq\",source=\"R1\"} 2\n\
   fusion_requests_total{op=\"sjq\",source=\"R2\"} 1\n\
   # TYPE fusion_sources gauge\n\
   fusion_sources 2\n\
   # HELP fusion_answer_size bucketed values (sum approximated from bucket midpoints)\n\
   # TYPE fusion_answer_size histogram\n\
   fusion_answer_size_bucket{le=\"4.25\"} 1\n\
   fusion_answer_size_bucket{le=\"8.5\"} 1\n\
   fusion_answer_size_bucket{le=\"12.75\"} 1\n\
   fusion_answer_size_bucket{le=\"17\"} 2\n\
   fusion_answer_size_bucket{le=\"+Inf\"} 2\n\
   fusion_answer_size_sum 17\n\
   fusion_answer_size_count 2\n"

let test_chrome_golden () =
  Alcotest.(check string) "chrome trace-event json" chrome_golden
    (Fusion_obs.Chrome.to_string (golden_spans ()))

let test_prom_golden () =
  Alcotest.(check string) "prometheus exposition" prom_golden
    (Fusion_obs.Prom.of_registry (golden_registry ()))

(* All three metric kinds under labels, with the histogram family split
   over two label sets and the families' samples deliberately
   interleaved at registration: the exposition must still emit each
   family contiguously, TYPE (and HELP for histograms) exactly once,
   and the per-label-set _sum/_count lines. *)
let labeled_registry () =
  let r = Metrics.create () in
  let spec = { Metrics.lo = 0; hi = 8; buckets = 2 } in
  Metrics.observe r ~spec ~labels:[ ("tenant", "t1") ] "fusion_serve_response_time" 2;
  Metrics.incr r ~labels:[ ("shard", "s0") ] "fusion_serve_submitted_total";
  Metrics.observe r ~spec ~labels:[ ("tenant", "t2") ] "fusion_serve_response_time" 7;
  Metrics.gauge r ~labels:[ ("tenant", "t1") ] "fusion_serve_window_p99" 0.5;
  Metrics.incr r ~labels:[ ("shard", "s1") ] "fusion_serve_submitted_total";
  Metrics.observe r ~spec ~labels:[ ("tenant", "t1") ] "fusion_serve_response_time" 5;
  r

let prom_labeled_golden =
  "# HELP fusion_serve_response_time bucketed values (sum approximated from bucket midpoints)\n\
   # TYPE fusion_serve_response_time histogram\n\
   fusion_serve_response_time_bucket{tenant=\"t1\",le=\"4.5\"} 1\n\
   fusion_serve_response_time_bucket{tenant=\"t1\",le=\"9\"} 2\n\
   fusion_serve_response_time_bucket{tenant=\"t1\",le=\"+Inf\"} 2\n\
   fusion_serve_response_time_sum{tenant=\"t1\"} 9\n\
   fusion_serve_response_time_count{tenant=\"t1\"} 2\n\
   fusion_serve_response_time_bucket{tenant=\"t2\",le=\"4.5\"} 0\n\
   fusion_serve_response_time_bucket{tenant=\"t2\",le=\"9\"} 1\n\
   fusion_serve_response_time_bucket{tenant=\"t2\",le=\"+Inf\"} 1\n\
   fusion_serve_response_time_sum{tenant=\"t2\"} 6.75\n\
   fusion_serve_response_time_count{tenant=\"t2\"} 1\n\
   # TYPE fusion_serve_submitted_total counter\n\
   fusion_serve_submitted_total{shard=\"s0\"} 1\n\
   fusion_serve_submitted_total{shard=\"s1\"} 1\n\
   # TYPE fusion_serve_window_p99 gauge\n\
   fusion_serve_window_p99{tenant=\"t1\"} 0.5\n"

let test_prom_labeled_golden () =
  Alcotest.(check string) "labeled prometheus exposition" prom_labeled_golden
    (Fusion_obs.Prom.of_registry (labeled_registry ()))

(* Two raw names that sanitize to the same family ("fusion latency" and
   "fusion.latency"), registered either side of another family: the
   exposition groups by the sanitized name, so the family is one
   contiguous block with a single TYPE line. *)
let test_prom_sanitized_grouping () =
  let r = Metrics.create () in
  Metrics.incr r ~labels:[ ("k", "a") ] "fusion latency";
  Metrics.gauge r "fusion_other" 1.0;
  Metrics.incr r ~labels:[ ("k", "b") ] "fusion.latency";
  let expected =
    "# TYPE fusion_latency counter\n\
     fusion_latency{k=\"a\"} 1\n\
     fusion_latency{k=\"b\"} 1\n\
     # TYPE fusion_other gauge\n\
     fusion_other 1\n"
  in
  Alcotest.(check string) "collided names form one contiguous family" expected
    (Fusion_obs.Prom.of_registry r)

(* JSONL -> span tree -> flatten -> JSONL is the identity on id-sorted
   input: ids are assigned in opening order, so the pre-order traversal
   of the rebuilt tree re-exports byte-identically. *)
let test_jsonl_tree_round_trip () =
  let metrics = Metrics.snapshot (golden_registry ()) in
  let sorted =
    List.sort (fun a b -> compare a.Trace.id b.Trace.id) (golden_spans ())
  in
  let exported = Fusion_obs.Jsonl.export ~metrics sorted in
  let spans, samples = Helpers.check_ok (Fusion_obs.Jsonl.parse exported) in
  let rebuilt = Analyze.flatten (Analyze.tree spans) in
  Alcotest.(check string) "round trip is the identity" exported
    (Fusion_obs.Jsonl.export ~metrics:samples rebuilt)

let suite =
  [
    Alcotest.test_case "plan text golden" `Quick test_plan_text_golden;
    Alcotest.test_case "plan dot golden" `Quick test_plan_dot_golden;
    Alcotest.test_case "explain golden" `Quick test_explain_golden;
    Alcotest.test_case "golden text reparses" `Quick test_golden_text_reparses;
    Alcotest.test_case "chrome golden" `Quick test_chrome_golden;
    Alcotest.test_case "prometheus golden" `Quick test_prom_golden;
    Alcotest.test_case "prometheus labeled golden" `Quick test_prom_labeled_golden;
    Alcotest.test_case "prometheus sanitized grouping" `Quick
      test_prom_sanitized_grouping;
    Alcotest.test_case "jsonl tree round trip" `Quick test_jsonl_tree_round_trip;
  ]
