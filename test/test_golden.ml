(* Golden-output regression tests: the exact renderings of the DMV
   example's (Figure 1) SJA+ and Filter plans through Plan_text,
   Plan_dot and Explain. Any intentional change to these formats should
   update the literals below — the point is that such changes are
   explicit, reviewed diffs rather than silent drift.

   The literals were generated from this very code path; regenerate by
   printing the corresponding [to_string]/[pp] output for
   [Workload.fig1 ()]. *)

open Fusion_core
open Fusion_plan
module Workload = Fusion_workload.Workload

let sja_plus_text = "L3 := lq(R3)\nL2 := lq(R2)\nL1 := lq(R1)\nX1_1 := lsq(c1, L1)\nX1_2 := lsq(c1, L2)\nX1_3 := lsq(c1, L3)\nX1 := union(X1_1, X1_2, X1_3)\nX2_1 := lsq(c2, L1)\nS2 := union(X2_1)\nD2_1 := diff(X1, S2)\nX2_2_t := lsq(c2, L2)\nX2_2 := inter(X2_2_t, D2_1)\nD2_2 := diff(D2_1, X2_2)\nX2_3_t := lsq(c2, L3)\nX2_3 := inter(X2_3_t, D2_2)\nU2 := union(X2_1, X2_2, X2_3)\nX2 := inter(X1, U2)\nanswer X2\n"

let filter_text = "X1_1 := sq(c1, R1)\nX1_2 := sq(c1, R2)\nX1_3 := sq(c1, R3)\nX1 := union(X1_1, X1_2, X1_3)\nX2_1 := sq(c2, R1)\nX2_2 := sq(c2, R2)\nX2_3 := sq(c2, R3)\nU2 := union(X2_1, X2_2, X2_3)\nX2 := inter(X1, U2)\nanswer X2\n"

let sja_plus_dot = "digraph plan {\n  rankdir=TB;\n  node [fontsize=11];\n  n0 [label=\"L3 := lq(R3)\", shape=box3d];\n  n1 [label=\"L2 := lq(R2)\", shape=box3d];\n  n2 [label=\"L1 := lq(R1)\", shape=box3d];\n  n3 [label=\"X1_1 := sq(c1, local)\", shape=ellipse];\n  n2 -> n3;\n  n4 [label=\"X1_2 := sq(c1, local)\", shape=ellipse];\n  n1 -> n4;\n  n5 [label=\"X1_3 := sq(c1, local)\", shape=ellipse];\n  n0 -> n5;\n  n6 [label=\"X1 := \226\136\170\", shape=ellipse];\n  n3 -> n6;\n  n4 -> n6;\n  n5 -> n6;\n  n7 [label=\"X2_1 := sq(c2, local)\", shape=ellipse];\n  n2 -> n7;\n  n8 [label=\"S2 := \226\136\170\", shape=ellipse];\n  n7 -> n8;\n  n9 [label=\"D2_1 := \226\136\146\", shape=ellipse];\n  n6 -> n9;\n  n8 -> n9;\n  n10 [label=\"X2_2_t := sq(c2, local)\", shape=ellipse];\n  n1 -> n10;\n  n11 [label=\"X2_2 := \226\136\169\", shape=ellipse];\n  n10 -> n11;\n  n9 -> n11;\n  n12 [label=\"D2_2 := \226\136\146\", shape=ellipse];\n  n9 -> n12;\n  n11 -> n12;\n  n13 [label=\"X2_3_t := sq(c2, local)\", shape=ellipse];\n  n0 -> n13;\n  n14 [label=\"X2_3 := \226\136\169\", shape=ellipse];\n  n13 -> n14;\n  n12 -> n14;\n  n15 [label=\"U2 := \226\136\170\", shape=ellipse];\n  n7 -> n15;\n  n11 -> n15;\n  n14 -> n15;\n  n16 [label=\"X2 := \226\136\169\", shape=ellipse];\n  n6 -> n16;\n  n15 -> n16;\n  answer [shape=doublecircle, label=\"answer\"];\n  n16 -> answer;\n}\n"

let sja_plus_explain = " 1) L3 := lq(R3)                           cost     74.0 /    74.0   rows      3.0 /     3\n 2) L2 := lq(R2)                           cost     74.0 /    74.0   rows      3.0 /     3\n 3) L1 := lq(R1)                           cost     74.0 /    74.0   rows      3.0 /     3\n 4) X1_1 := sq(c1, L1)                     cost      0.0 /     0.0   rows      2.0 /     2\n 5) X1_2 := sq(c1, L2)                     cost      0.0 /     0.0   rows      1.0 /     1\n 6) X1_3 := sq(c1, L3)                     cost      0.0 /     0.0   rows      0.0 /     0\n 7) X1 := X1_1 \226\136\170 X1_2 \226\136\170 X1_3           cost      0.0 /     0.0   rows      3.0 /     3\n 8) X2_1 := sq(c2, L1)                     cost      0.0 /     0.0   rows      1.0 /     1\n 9) S2 := X2_1                             cost      0.0 /     0.0   rows      1.0 /     1\n10) D2_1 := X1 - S2                        cost      0.0 /     0.0   rows      3.0 /     2\n11) X2_2_t := sq(c2, L2)                   cost      0.0 /     0.0   rows      2.0 /     2\n12) X2_2 := X2_2_t \226\136\169 D2_1                cost      0.0 /     0.0   rows      0.0 /     1\n13) D2_2 := D2_1 - X2_2                    cost      0.0 /     0.0   rows      3.0 /     1\n14) X2_3_t := sq(c2, L3)                   cost      0.0 /     0.0   rows      2.0 /     2\n15) X2_3 := X2_3_t \226\136\169 D2_2                cost      0.0 /     0.0   rows      0.0 /     0\n16) U2 := X2_1 \226\136\170 X2_2 \226\136\170 X2_3           cost      0.0 /     0.0   rows      0.0 /     2\n17) X2 := X1 \226\136\169 U2                        cost      0.0 /     0.0   rows      0.0 /     2\ntotal                                      222.0 /   222.0"

let fig1_env () =
  let instance = Workload.fig1 () in
  let env =
    Opt_env.create ~universe:instance.Workload.spec.Workload.universe
      instance.Workload.sources instance.Workload.query
  in
  (instance, env)

let plan_of env algo = (Optimizer.optimize algo env).Optimized.plan

let test_plan_text_golden () =
  let _, env = fig1_env () in
  Alcotest.(check string) "sja+ plan text" sja_plus_text
    (Plan_text.to_string (plan_of env Optimizer.Sja_plus));
  Alcotest.(check string) "filter plan text" filter_text
    (Plan_text.to_string (plan_of env Optimizer.Filter))

let test_plan_dot_golden () =
  let _, env = fig1_env () in
  Alcotest.(check string) "sja+ dot" sja_plus_dot
    (Plan_dot.to_string (plan_of env Optimizer.Sja_plus))

let test_explain_golden () =
  let instance, env = fig1_env () in
  let plan = plan_of env Optimizer.Sja_plus in
  let result = Helpers.execute_plan instance plan in
  let explain =
    Explain.analyze ~model:env.Opt_env.model ~est:env.Opt_env.est
      ~sources:env.Opt_env.sources ~conds:env.Opt_env.conds plan result
  in
  Alcotest.(check string) "sja+ explain" sja_plus_explain
    (Format.asprintf "%a" (Explain.pp ?source_name:None) explain)

(* The golden plan text is not just stable — it still parses back to
   the plan it came from. *)
let test_golden_text_reparses () =
  let _, env = fig1_env () in
  List.iter
    (fun (label, text, algo) ->
      let plan = Helpers.check_ok (Plan_text.of_string text) in
      Alcotest.(check bool) label true (plan = plan_of env algo))
    [
      ("sja+ reparses", sja_plus_text, Optimizer.Sja_plus);
      ("filter reparses", filter_text, Optimizer.Filter);
    ]

let suite =
  [
    Alcotest.test_case "plan text golden" `Quick test_plan_text_golden;
    Alcotest.test_case "plan dot golden" `Quick test_plan_dot_golden;
    Alcotest.test_case "explain golden" `Quick test_explain_golden;
    Alcotest.test_case "golden text reparses" `Quick test_golden_text_reparses;
  ]
