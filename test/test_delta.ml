(* The incremental subsystem: sym_diff kernels against the reference
   implementation, Relation.remove, delta parsing and application, the
   candidate-set delta rules, incremental-equals-full over randomized
   mutation batches, the version-vector answer cache, and standing-query
   subscriptions end to end. *)

open Fusion_data
open Fusion_core
module Workload = Fusion_workload.Workload
module Source = Fusion_source.Source
module Prng = Fusion_stats.Prng
module Query = Fusion_query.Query
module Delta = Fusion_delta.Delta
module Change = Fusion_delta.Change
module Maintained = Fusion_delta.Maintained
module Serve = Fusion_serve.Server
module Mediator = Fusion_mediator.Mediator
module Answer_cache = Fusion_plan.Answer_cache
module Metrics = Fusion_obs.Metrics

(* --- sym_diff: flat kernels against the reference ------------------------ *)

let dense_int_gen =
  QCheck2.Gen.(
    let* off = int_range 0 200 in
    map (fun i -> Value.Int (off + i)) (int_range 0 300))

let sparse_value_gen =
  QCheck2.Gen.(
    oneof
      [
        map (fun i -> Value.Int i) (int_range 0 10_000);
        map (fun s -> Value.String s) (string_size (int_range 1 3));
      ])

let sym_diff_agrees name value_gen =
  Helpers.qtest ~count:200 name
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 400) value_gen)
        (list_size (int_range 0 400) value_gen))
    (fun (a, b) -> Printf.sprintf "|a|=%d |b|=%d" (List.length a) (List.length b))
    (fun (la, lb) ->
      let fa = Item_set.of_list la and fb = Item_set.of_list lb in
      let ra = Item_set_ref.of_list la and rb = Item_set_ref.of_list lb in
      let fd = Item_set.sym_diff fa fb and rd = Item_set_ref.sym_diff ra rb in
      List.equal
        (fun a b -> Value.compare a b = 0)
        (Item_set.to_list fd)
        (Item_set_ref.to_list rd)
      && Item_set.cardinal fd = Item_set_ref.cardinal rd
      (* the defining identity, inside the flat implementation *)
      && Item_set.equal fd
           (Item_set.union (Item_set.diff fa fb) (Item_set.diff fb fa))
      && Item_set.equal (Item_set.sym_diff fa fb) (Item_set.sym_diff fb fa)
      && Item_set.is_empty (Item_set.sym_diff fa fa)
      && Item_set.equal (Item_set.sym_diff fa Item_set.empty) fa)

let ints lo hi =
  let rec go acc i = if i < lo then acc else go (Value.Int i :: acc) (i - 1) in
  go [] hi

let test_sym_diff_reprs () =
  (* Force the bits×bits, bits×ids and cross-scope paths explicitly. *)
  let tbl = Intern.create () in
  let lo = Item_set.of_list_in tbl (ints 0 999) in
  let hi = Item_set.of_list_in tbl (ints 500 1499) in
  Alcotest.(check string) "operands dense" "bits" (Item_set.Debug.repr lo);
  let d = Item_set.sym_diff lo hi in
  Alcotest.(check int) "dense sym_diff cardinality" 1000 (Item_set.cardinal d);
  Alcotest.check Helpers.item_set "dense sym_diff value"
    (Item_set.of_list_in tbl (ints 0 499 @ ints 1000 1499))
    d;
  let sparse =
    Item_set.of_list_in tbl (List.filter (fun v -> Value.hash v mod 97 = 0) (ints 0 1499))
  in
  Alcotest.check Helpers.item_set "bits × ids = union of one-sided diffs"
    (Item_set.union (Item_set.diff lo sparse) (Item_set.diff sparse lo))
    (Item_set.sym_diff lo sparse);
  (* A far-away dense block exercises the sparse-span fallback. *)
  let far = Item_set.of_list_in tbl (ints 1_000_000 1_000_999) in
  Alcotest.(check int) "disjoint blocks: sym_diff is the union" 2000
    (Item_set.cardinal (Item_set.sym_diff lo far));
  (* Cross-scope operands are remapped like every other kernel. *)
  let other = Intern.create () in
  let foreign = Item_set.of_list_in other (ints 500 1499) in
  Alcotest.check Helpers.item_set "cross-scope sym_diff" d
    (Item_set.sym_diff lo foreign)

(* --- Relation.remove ----------------------------------------------------- *)

let abc_tuple m a b = Tuple.create_exn Helpers.abc_schema (Helpers.abc_row m a b)

let sorted_tuples r =
  List.sort Tuple.compare (Relation.tuples r)

let test_relation_remove () =
  let r =
    Helpers.abc_relation
      [ Helpers.abc_row "x" 1 "p"; Helpers.abc_row "y" 2 "q";
        Helpers.abc_row "x" 3 "r"; Helpers.abc_row "z" 4 "s" ]
  in
  let v0 = Relation.version r in
  Alcotest.(check bool) "remove hit" true (Relation.remove r (abc_tuple "x" 1 "p"));
  Alcotest.(check int) "cardinality drops" 3 (Relation.cardinality r);
  Alcotest.(check int) "version bumps" (v0 + 1) (Relation.version r);
  Alcotest.(check bool) "remove miss" false (Relation.remove r (abc_tuple "x" 1 "p"));
  Alcotest.(check int) "miss leaves version" (v0 + 1) (Relation.version r);
  (* The swap-with-last fill must keep the merge index exact. *)
  Alcotest.(check int) "other x tuple still indexed" 1
    (List.length (Relation.tuples_of_item r (Value.String "x")));
  Alcotest.(check bool) "swapped tuple found via index" true
    (List.exists
       (Tuple.equal (abc_tuple "z" 4 "s"))
       (Relation.tuples_of_item r (Value.String "z")));
  Alcotest.check
    (Alcotest.list (Alcotest.testable Tuple.pp Tuple.equal))
    "remaining rows"
    (List.sort Tuple.compare
       [ abc_tuple "y" 2 "q"; abc_tuple "x" 3 "r"; abc_tuple "z" 4 "s" ])
    (sorted_tuples r);
  (* Removing an item's last tuple drops it from the item set. *)
  Alcotest.(check bool) "remove last x" true (Relation.remove r (abc_tuple "x" 3 "r"));
  Alcotest.(check bool) "x gone from items" false
    (Item_set.mem (Value.String "x") (Relation.items r));
  (* Duplicates go one at a time. *)
  let d =
    Helpers.abc_relation [ Helpers.abc_row "w" 7 "t"; Helpers.abc_row "w" 7 "t" ]
  in
  Alcotest.(check bool) "dup 1" true (Relation.remove d (abc_tuple "w" 7 "t"));
  Alcotest.(check int) "one copy left" 1 (Relation.cardinality d);
  Alcotest.(check bool) "dup 2" true (Relation.remove d (abc_tuple "w" 7 "t"));
  Alcotest.(check bool) "dup 3 misses" false (Relation.remove d (abc_tuple "w" 7 "t"));
  Alcotest.(check int) "empty" 0 (Relation.cardinality d)

(* --- Delta parse / to_line / apply --------------------------------------- *)

let test_delta_parse () =
  let s = Helpers.abc_schema in
  let d = Helpers.check_ok (Delta.parse s "+x,1,p; -y,2,q ;+z, 3 ,r") in
  Alcotest.(check int) "inserts" 2 (List.length d.Delta.inserts);
  Alcotest.(check int) "deletes" 1 (List.length d.Delta.deletes);
  Alcotest.(check int) "size" 3 (Delta.size d);
  Alcotest.(check bool) "insert parsed" true
    (List.exists (Tuple.equal (abc_tuple "z" 3 "r")) d.Delta.inserts);
  (* to_line round-trips through parse. *)
  let d' = Helpers.check_ok (Delta.parse s (Delta.to_line s d)) in
  Alcotest.(check bool) "roundtrip" true
    (List.equal Tuple.equal d.Delta.inserts d'.Delta.inserts
    && List.equal Tuple.equal d.Delta.deletes d'.Delta.deletes);
  ignore (Helpers.check_err "empty" (Delta.parse s "  "));
  ignore (Helpers.check_err "no sign" (Delta.parse s "x,1,p"));
  ignore (Helpers.check_err "bad arity" (Delta.parse s "+x,1"));
  ignore (Helpers.check_err "bad type" (Delta.parse s "+x,notanint,p"))

let test_delta_apply () =
  let r =
    Helpers.abc_relation [ Helpers.abc_row "x" 1 "p"; Helpers.abc_row "y" 2 "q" ]
  in
  let v0 = Relation.version r in
  let delta =
    Delta.make
      ~inserts:[ abc_tuple "n" 9 "new" ]
      ~deletes:[ abc_tuple "y" 2 "q"; abc_tuple "ghost" 0 "gone" ]
  in
  let a = Delta.apply r delta in
  Alcotest.(check int) "inserted" 1 a.Delta.inserted;
  Alcotest.(check int) "deleted" 1 a.Delta.deleted;
  Alcotest.(check int) "missed" 1 a.Delta.missed;
  Alcotest.(check int) "version counts effective ops" (v0 + 2) a.Delta.version;
  Alcotest.(check int) "version matches relation" (Relation.version r) a.Delta.version;
  Alcotest.check Helpers.item_set "touched = changed items"
    (Helpers.items_of_strings [ "n"; "y" ])
    a.Delta.touched;
  Alcotest.(check int) "net cardinality" 2 (Relation.cardinality r)

(* --- the delta rules ----------------------------------------------------- *)

let small_set_gen =
  QCheck2.Gen.(
    map
      (fun l -> Item_set.of_list (List.map (fun i -> Value.Int i) l))
      (list_size (int_range 0 25) (int_range 0 30)))

(* A set plus a mutation of it: some elements leave, some enter. *)
let mutated_pair_gen =
  QCheck2.Gen.(
    let* before = small_set_gen in
    let* leave = small_set_gen in
    let* enter = small_set_gen in
    return (before, Item_set.union (Item_set.diff before leave) enter))

let rules_prop =
  Helpers.qtest ~count:300 "delta rules ≡ recomputation"
    QCheck2.Gen.(pair mutated_pair_gen mutated_pair_gen)
    (fun ((a, a'), (b, b')) ->
      Format.asprintf "A=%a A'=%a B=%a B'=%a" Item_set.pp a Item_set.pp a'
        Item_set.pp b Item_set.pp b')
    (fun ((a, a'), (b, b')) ->
      let da = Change.of_snapshots ~before:a ~after:a' in
      let db = Change.of_snapshots ~before:b ~after:b' in
      (* normalization invariants *)
      Item_set.is_empty (Item_set.inter da.Change.adds da.Change.dels)
      && Item_set.subset da.Change.dels a
      && Item_set.is_empty (Item_set.inter da.Change.adds a)
      && Item_set.equal (Change.apply a da) a'
      && Item_set.equal (Change.apply a' (Change.inverse da)) a
      (* old_on recovers the pre-change restriction *)
      && Item_set.equal
           (Change.old_on ~now:a' (Change.touched da) da)
           (Item_set.inter (Change.touched da) a)
      (* each rule's change, applied to the old combination, gives the
         new combination *)
      && Item_set.equal
           (Change.apply (Item_set.union a b) (Change.union_rule ~a:a' ~b:b' da db))
           (Item_set.union a' b')
      && Item_set.equal
           (Change.apply (Item_set.inter a b) (Change.inter_rule ~a:a' ~b:b' da db))
           (Item_set.inter a' b')
      && Item_set.equal
           (Change.apply (Item_set.diff a b) (Change.diff_rule ~l:a' ~r:b' da db))
           (Item_set.diff a' b'))

(* --- incremental ≡ full re-execution over random mutation batches -------- *)

(* Random mixed insert/delete batches against a random workload world
   and a random optimized plan: after every applied batch the maintained
   answer must be byte-equal to a full re-execution of the same plan on
   the mutated catalog, and the version vector must track the
   relations. This is the subsystem's central correctness property. *)
let mutation_gen =
  QCheck2.Gen.(
    triple Helpers.spec_gen
      (int_range 0 (List.length Optimizer.all - 1))
      (int_range 1 4))

let mutation_print (spec, i, rounds) =
  Printf.sprintf "%s, %d rounds, %s"
    (Optimizer.name (List.nth Optimizer.all i))
    rounds (Helpers.spec_print spec)

let random_delta prng instance rel =
  let spec = instance.Workload.spec in
  let m = Query.m instance.Workload.query in
  let existing = Relation.tuples rel in
  let n_del = Prng.int prng 4 and n_ins = Prng.int prng 4 in
  let deletes = List.filteri (fun i _ -> i < n_del) existing in
  let inserts =
    List.init n_ins (fun _ ->
        let item =
          Printf.sprintf "I%06d" (Prng.int prng (max 1 spec.Workload.universe))
        in
        Tuple.create_exn instance.Workload.schema
          (Value.String item
          :: List.init m (fun _ -> Value.Int (Prng.int prng 1500))))
  in
  Delta.make ~inserts ~deletes

let incremental_equals_full =
  Helpers.qtest ~count:30 "incremental maintenance ≡ full re-execution"
    mutation_gen mutation_print (fun (spec, algo_i, rounds) ->
      let instance = Workload.generate spec in
      let env =
        Opt_env.create ~universe:spec.Workload.universe
          instance.Workload.sources instance.Workload.query
      in
      let plan =
        (Optimizer.optimize (List.nth Optimizer.all algo_i) env).Optimized.plan
      in
      let m =
        Helpers.check_ok
          (Maintained.create ~query:instance.Workload.query
             ~sources:(Array.to_list instance.Workload.sources)
             plan)
      in
      let full () =
        (Helpers.execute_plan instance plan).Fusion_plan.Exec.answer
      in
      let prng = Prng.create (spec.Workload.seed + 31) in
      let n = Array.length instance.Workload.sources in
      let ok = ref (Item_set.equal (Maintained.answer m) (full ())) in
      for _round = 1 to rounds do
        let j = Prng.int prng n in
        let rel = Source.relation instance.Workload.sources.(j) in
        let before = Maintained.answer m in
        let _, change = Maintained.mutate m ~source:j (random_delta prng instance rel) in
        ok :=
          !ok
          && Item_set.equal (Maintained.answer m) (full ())
          (* the pushed change really is before → after *)
          && Item_set.equal (Change.apply before change) (Maintained.answer m)
          && (Maintained.versions m).(j) = Relation.version rel
      done;
      !ok)

(* --- the version-vector answer cache ------------------------------------- *)

let test_versioned_cache () =
  let c = Answer_cache.create ~versioned:true () in
  Alcotest.(check bool) "versioned" true (Answer_cache.versioned c);
  let ans = Helpers.items_of_strings [ "a"; "b" ] in
  Answer_cache.note c ~source:"R1" ~cond:"A1 < 5" ~finish:10.0 ~version:3 ans;
  (* A version-matching replay is exact: staleness 0 however late. *)
  (match Answer_cache.find c ~source:"R1" ~cond:"A1 < 5" ~version:3 ~ready:1000.0 () with
  | Answer_cache.Cached (staleness, got) ->
    Alcotest.(check (float 0.0)) "staleness zero" 0.0 staleness;
    Alcotest.check Helpers.item_set "replayed answer" ans got
  | _ -> Alcotest.fail "expected a cached hit");
  (* A version mismatch is never served. *)
  (match Answer_cache.find c ~source:"R1" ~cond:"A1 < 5" ~version:4 ~ready:1000.0 () with
  | Answer_cache.Miss -> ()
  | _ -> Alcotest.fail "expected a miss on version mismatch");
  let s = Answer_cache.stats c in
  Alcotest.(check int) "one invalidation" 1 s.Answer_cache.invalidated;
  Alcotest.(check int) "one cached hit" 1 s.Answer_cache.cached_hits;
  (match Answer_cache.find c ~source:"R1" ~cond:"A1 < 5" ~version:4 ~ready:1000.0 () with
  | Answer_cache.Miss -> ()
  | _ -> Alcotest.fail "invalidated entry must be gone")

let test_cache_apply_delta () =
  let c = Answer_cache.create ~versioned:true () in
  let ans = Helpers.items_of_strings [ "a"; "b" ] in
  Answer_cache.note c ~source:"R1" ~cond:"patchable" ~finish:10.0 ~version:1 ans;
  Answer_cache.note c ~source:"R1" ~cond:"stale" ~finish:10.0 ~version:1 ans;
  Answer_cache.note c ~source:"R1" ~cond:"pending" ~finish:50.0 ~version:1 ans;
  Answer_cache.note c ~source:"R2" ~cond:"patchable" ~finish:10.0 ~version:7 ans;
  let patched = Helpers.items_of_strings [ "a"; "b"; "c" ] in
  Answer_cache.apply_delta c ~source:"R1" ~now:20.0 ~version:2
    ~patch:(fun ~cond answer ->
      match cond with
      | "patchable" -> Some (Item_set.union answer (Helpers.items_of_strings [ "c" ]))
      | _ -> None);
  (* Patched entry serves at the new version... *)
  (match Answer_cache.find c ~source:"R1" ~cond:"patchable" ~version:2 ~ready:100.0 () with
  | Answer_cache.Cached (0.0, got) ->
    Alcotest.check Helpers.item_set "patched answer" patched got
  | _ -> Alcotest.fail "expected the patched entry");
  (* ...the unpatchable one was invalidated... *)
  (match Answer_cache.find c ~source:"R1" ~cond:"stale" ~version:2 ~ready:100.0 () with
  | Answer_cache.Miss -> ()
  | _ -> Alcotest.fail "unpatchable entry must be invalidated");
  (* ...an in-flight entry is invalidated, not patched... *)
  (match Answer_cache.find c ~source:"R1" ~cond:"pending" ~version:2 ~ready:100.0 () with
  | Answer_cache.Miss -> ()
  | _ -> Alcotest.fail "in-flight entry must be invalidated");
  (* ...and other sources are untouched. *)
  (match Answer_cache.find c ~source:"R2" ~cond:"patchable" ~version:7 ~ready:100.0 () with
  | Answer_cache.Cached (0.0, got) -> Alcotest.check Helpers.item_set "other source" ans got
  | _ -> Alcotest.fail "other source's entry must survive");
  let s = Answer_cache.stats c in
  Alcotest.(check int) "patched count" 1 s.Answer_cache.patched;
  Alcotest.(check int) "invalidated count" 2 s.Answer_cache.invalidated

let test_cache_publish_metrics () =
  let r = Metrics.create () in
  Metrics.with_registry r (fun () ->
      let c = Answer_cache.create ~versioned:true () in
      Answer_cache.note c ~source:"R1" ~cond:"c" ~finish:1.0 ~version:1
        (Helpers.items_of_strings [ "a" ]);
      ignore (Answer_cache.find c ~source:"R1" ~cond:"c" ~version:1 ~ready:2.0 ());
      ignore (Answer_cache.find c ~source:"R1" ~cond:"zz" ~version:1 ~ready:2.0 ());
      Answer_cache.publish_metrics c;
      (* publishing is a flush of deltas: a second publish with no new
         events must add nothing. *)
      Answer_cache.publish_metrics c;
      let get name =
        List.find_map
          (fun s ->
            if s.Metrics.name = name then
              match s.Metrics.value with
              | Metrics.Vcounter v -> Some v
              | _ -> None
            else None)
          (Metrics.snapshot r)
      in
      Alcotest.(check (option (float 0.0))) "lookups" (Some 2.0)
        (get "fusion_cache_lookups_total");
      Alcotest.(check (option (float 0.0))) "cached hits" (Some 1.0)
        (get "fusion_cache_cached_hits_total");
      Alcotest.(check (option (float 0.0))) "misses" (Some 1.0)
        (get "fusion_cache_lookup_misses_total"))

(* --- standing queries on the server -------------------------------------- *)

let small_spec =
  {
    Workload.default_spec with
    Workload.n_sources = 3;
    universe = 60;
    tuples_per_source = (20, 30);
    selectivities = [| 0.4; 0.5 |];
    seed = 7;
  }

(* A row that satisfies every [A_i < threshold] condition: attributes 0. *)
let matching_row instance item =
  Tuple.create_exn instance.Workload.schema
    (Value.String item
    :: List.init (Query.m instance.Workload.query) (fun _ -> Value.Int 0))

let test_server_subscribe_push () =
  let instance = Workload.generate small_spec in
  let env = Opt_env.create instance.Workload.sources instance.Workload.query in
  let optimized = Optimizer.optimize Optimizer.Sja_plus env in
  let srv = Serve.create ~versioned_cache:true instance.Workload.sources in
  let pushes = ref [] in
  Serve.on_push srv (fun p -> pushes := p :: !pushes);
  let id =
    Helpers.check_ok
      (Serve.subscribe srv ~tenant:"t1" ~label:"standing"
         ~conds:env.Opt_env.conds optimized.Optimized.plan)
  in
  let initial = Option.get (Serve.subscription_answer srv id) in
  Alcotest.check Helpers.item_set "initial answer = full execution"
    (Helpers.execute_plan instance optimized.Optimized.plan).Fusion_plan.Exec.answer
    initial;
  Alcotest.(check int) "one subscriber" 1 (Serve.delta_stats srv).Serve.ds_subscribers;
  (* A fresh item matching every condition must enter the answer. *)
  let delta = Delta.make ~inserts:[ matching_row instance "Zfresh" ] ~deletes:[] in
  let applied = Helpers.check_ok (Serve.mutate srv ~source:"R1" delta) in
  Alcotest.(check int) "inserted" 1 applied.Delta.inserted;
  (match !pushes with
  | [ p ] ->
    Alcotest.(check int) "push subscription id" id p.Serve.pu_sub;
    Alcotest.(check int) "push seq" 1 p.Serve.pu_seq;
    Alcotest.(check bool) "diff adds the fresh item" true
      (Item_set.mem (Value.String "Zfresh") p.Serve.pu_change.Change.adds);
    Alcotest.check Helpers.item_set "pushed answer is current"
      (Option.get (Serve.subscription_answer srv id))
      p.Serve.pu_answer
  | l -> Alcotest.failf "expected exactly one push, got %d" (List.length l));
  Alcotest.check Helpers.item_set "maintained answer = full re-execution"
    (Helpers.execute_plan instance optimized.Optimized.plan).Fusion_plan.Exec.answer
    (Option.get (Serve.subscription_answer srv id));
  (* Undo: deleting the row pushes the inverse diff. *)
  let undo = Delta.make ~inserts:[] ~deletes:[ matching_row instance "Zfresh" ] in
  ignore (Helpers.check_ok (Serve.mutate srv ~source:"R1" undo));
  Alcotest.(check int) "second push" 2 (List.length !pushes);
  Alcotest.check Helpers.item_set "answer back to the start" initial
    (Option.get (Serve.subscription_answer srv id));
  (* Stats, teardown and failure paths. *)
  let ds = Serve.delta_stats srv in
  Alcotest.(check int) "batches" 2 ds.Serve.ds_batches;
  Alcotest.(check int) "inserts" 1 ds.Serve.ds_inserts;
  Alcotest.(check int) "deletes" 1 ds.Serve.ds_deletes;
  Alcotest.(check int) "pushes" 2 ds.Serve.ds_pushes;
  ignore (Helpers.check_err "unknown source" (Serve.mutate srv ~source:"nope" delta));
  Alcotest.(check bool) "unsubscribe" true (Serve.unsubscribe srv id);
  Alcotest.(check bool) "unsubscribe twice" false (Serve.unsubscribe srv id);
  Alcotest.(check int) "no subscribers left" 0
    (Serve.delta_stats srv).Serve.ds_subscribers;
  ignore (Helpers.check_ok (Serve.mutate srv ~source:"R1" delta));
  Alcotest.(check int) "no push without subscribers" 2 (List.length !pushes)

(* One-shot queries served after a mutation must see the post-delta
   answer: the versioned cache patches or invalidates, never replays a
   provably stale entry. *)
let test_server_cache_after_mutation () =
  let instance = Workload.generate small_spec in
  let env = Opt_env.create instance.Workload.sources instance.Workload.query in
  let optimized = Optimizer.optimize Optimizer.Sja_plus env in
  let job =
    {
      Serve.plan = optimized.Optimized.plan;
      conds = env.Opt_env.conds;
      tenant = "t1";
      priority = 0;
      est_cost = optimized.Optimized.est_cost;
      deadline = None;
      label = "";
    }
  in
  let srv = Serve.create ~versioned_cache:true instance.Workload.sources in
  ignore (Serve.submit srv ~at:0.0 job);
  Serve.drain srv;
  let delta = Delta.make ~inserts:[ matching_row instance "Zfresh" ] ~deletes:[] in
  ignore (Helpers.check_ok (Serve.mutate srv ~source:"R1" delta));
  ignore (Serve.submit srv ~at:(Serve.now srv +. 1.0) job);
  Serve.drain srv;
  (match Serve.completions srv with
  | [ first; second ] ->
    let answer c = Option.get c.Serve.c_answer in
    Alcotest.(check bool) "second run sees the new item" true
      (Item_set.mem (Value.String "Zfresh") (answer second));
    Alcotest.(check bool) "first run predates it" false
      (Item_set.mem (Value.String "Zfresh") (answer first))
  | l -> Alcotest.failf "expected two completions, got %d" (List.length l));
  let cs = Serve.cache_stats srv in
  Alcotest.(check bool) "cache saw delta maintenance" true
    (cs.Answer_cache.patched + cs.Answer_cache.invalidated > 0)

let test_mediator_subscribe_sql () =
  let instance = Workload.generate small_spec in
  let mediator =
    Helpers.check_ok (Mediator.create (Array.to_list instance.Workload.sources))
  in
  let msrv = Mediator.Server.create mediator in
  let server = Mediator.Server.serve msrv in
  let pushes = ref 0 in
  Serve.on_push server (fun _ -> incr pushes);
  let sql = Query.to_sql ~union:"U" ~merge:"M" instance.Workload.query in
  let id = Helpers.check_ok (Mediator.Server.subscribe_sql msrv sql) in
  (match Serve.subscriptions server with
  | [ si ] ->
    Alcotest.(check int) "subscription id" id si.Serve.si_id;
    Alcotest.(check string) "label is the SQL" sql si.Serve.si_label
  | l -> Alcotest.failf "expected one subscription, got %d" (List.length l));
  (* The TCP [mut] path: parse against the source schema, apply, push. *)
  let m = Query.m instance.Workload.query in
  let payload = "+Zfresh" ^ String.concat "" (List.init m (fun _ -> ",0")) in
  let applied =
    Helpers.check_ok (Mediator.Server.mutate_line msrv ~source:"R1" payload)
  in
  Alcotest.(check int) "mut inserted" 1 applied.Delta.inserted;
  Alcotest.(check int) "pushed" 1 !pushes;
  Alcotest.(check bool) "answer gained the item" true
    (Item_set.mem (Value.String "Zfresh")
       (Option.get (Serve.subscription_answer server id)));
  ignore
    (Helpers.check_err "unknown source"
       (Mediator.Server.mutate_line msrv ~source:"nope" payload));
  ignore
    (Helpers.check_err "bad payload"
       (Mediator.Server.mutate_line msrv ~source:"R1" "+Zfresh"));
  Alcotest.(check bool) "unsubscribe" true (Mediator.Server.unsubscribe msrv id);
  Mediator.Server.shutdown msrv

let test_delta_metrics () =
  let r = Metrics.create () in
  Metrics.with_registry r (fun () ->
      let instance = Workload.generate small_spec in
      let env = Opt_env.create instance.Workload.sources instance.Workload.query in
      let optimized = Optimizer.optimize Optimizer.Sja_plus env in
      let srv = Serve.create ~versioned_cache:true instance.Workload.sources in
      let id =
        Helpers.check_ok
          (Serve.subscribe srv ~tenant:"t1" ~conds:env.Opt_env.conds
             optimized.Optimized.plan)
      in
      ignore (id : int);
      let delta = Delta.make ~inserts:[ matching_row instance "Zfresh" ] ~deletes:[] in
      ignore (Helpers.check_ok (Serve.mutate srv ~source:"R1" delta));
      Serve.publish_metrics srv;
      let names = List.map (fun s -> s.Metrics.name) (Metrics.snapshot r) in
      List.iter
        (fun name ->
          Alcotest.(check bool) (name ^ " present") true (List.mem name names))
        [ "fusion_delta_subscribe_total"; "fusion_delta_batches_total";
          "fusion_delta_inserts_total"; "fusion_delta_pushes_total";
          "fusion_delta_propagate_us"; "fusion_delta_subscribers" ])

let suite =
  [
    sym_diff_agrees "sym_diff ≡ reference (dense ints)" dense_int_gen;
    sym_diff_agrees "sym_diff ≡ reference (sparse mixed)" sparse_value_gen;
    Alcotest.test_case "sym_diff across representations" `Quick test_sym_diff_reprs;
    Alcotest.test_case "relation remove" `Quick test_relation_remove;
    Alcotest.test_case "delta parse and to_line" `Quick test_delta_parse;
    Alcotest.test_case "delta apply" `Quick test_delta_apply;
    rules_prop;
    incremental_equals_full;
    Alcotest.test_case "versioned answer cache" `Quick test_versioned_cache;
    Alcotest.test_case "cache apply_delta" `Quick test_cache_apply_delta;
    Alcotest.test_case "cache publish_metrics" `Quick test_cache_publish_metrics;
    Alcotest.test_case "server subscribe and push" `Quick test_server_subscribe_push;
    Alcotest.test_case "versioned cache after mutation" `Quick
      test_server_cache_after_mutation;
    Alcotest.test_case "mediator subscribe_sql and mutate_line" `Quick
      test_mediator_subscribe_sql;
    Alcotest.test_case "delta metrics" `Quick test_delta_metrics;
  ]
