(* Workload generator: determinism, selectivity and heterogeneity knobs. *)

open Fusion_data
open Fusion_source
module Workload = Fusion_workload.Workload

let test_deterministic () =
  let a = Workload.generate Workload.default_spec in
  let b = Workload.generate Workload.default_spec in
  Array.iter2
    (fun s1 s2 ->
      Alcotest.check Helpers.item_set "same items"
        (Relation.items (Source.relation s1))
        (Relation.items (Source.relation s2)))
    a.Workload.sources b.Workload.sources

let test_seed_changes_world () =
  let a = Workload.generate Workload.default_spec in
  let b = Workload.generate { Workload.default_spec with seed = 43 } in
  let differs =
    Array.exists2
      (fun s1 s2 ->
        not
          (Item_set.equal
             (Relation.items (Source.relation s1))
             (Relation.items (Source.relation s2))))
      a.Workload.sources b.Workload.sources
  in
  Alcotest.(check bool) "different" true differs

let test_shape () =
  let spec =
    { Workload.default_spec with n_sources = 5; selectivities = [| 0.1; 0.2 |] }
  in
  let instance = Workload.generate spec in
  Alcotest.(check int) "sources" 5 (Array.length instance.Workload.sources);
  Alcotest.(check int) "conditions" 2 (Fusion_query.Query.m instance.Workload.query);
  Alcotest.(check int) "schema arity = 1 + m" 3 (Schema.arity instance.Workload.schema);
  Helpers.check_ok
    (Fusion_query.Query.validate instance.Workload.schema instance.Workload.query);
  Array.iter
    (fun s ->
      let card = Relation.cardinality (Source.relation s) in
      Alcotest.(check bool) "cardinality in range" true (card >= 300 && card <= 600))
    instance.Workload.sources

let test_selectivity_honored () =
  let spec =
    {
      Workload.default_spec with
      n_sources = 2;
      universe = 100_000;
      tuples_per_source = (5000, 5000);
      selectivities = [| 0.25 |];
      seed = 5;
    }
  in
  let instance = Workload.generate spec in
  let cond = Fusion_query.Query.condition instance.Workload.query 0 in
  Array.iter
    (fun s ->
      let relation = Source.relation s in
      let matching =
        Relation.fold
          (fun acc t ->
            if Fusion_cond.Cond.eval (Relation.schema relation) cond t then acc + 1 else acc)
          0 relation
      in
      let share = float_of_int matching /. float_of_int (Relation.cardinality relation) in
      Alcotest.(check bool)
        (Printf.sprintf "tuple share %.3f ≈ 0.25" share)
        true
        (share > 0.20 && share < 0.30))
    instance.Workload.sources

let test_heterogeneity_fractions () =
  let spec =
    {
      Workload.default_spec with
      n_sources = 60;
      tuples_per_source = (20, 30);
      heterogeneity =
        { Workload.no_semijoin = 1.0; minimal = 0.0; slow = 1.0; tiny = 1.0 };
      seed = 9;
    }
  in
  let instance = Workload.generate spec in
  Array.iter
    (fun s ->
      let caps = Source.capability s in
      Alcotest.(check bool) "no native semijoin" false caps.Capability.native_semijoin;
      Alcotest.(check bool) "slow profile" true
        ((Source.profile s).Fusion_net.Profile.request_overhead
        > Fusion_net.Profile.default.Fusion_net.Profile.request_overhead);
      Alcotest.(check bool) "tiny" true (Relation.cardinality (Source.relation s) <= 5))
    instance.Workload.sources

let test_correlation_extreme () =
  (* With correlation 1.0 every attribute column repeats A1, so two
     conditions with the same threshold accept exactly the same tuples. *)
  let spec =
    {
      Workload.default_spec with
      n_sources = 2;
      selectivities = [| 0.3; 0.3 |];
      correlation = 1.0;
      seed = 15;
    }
  in
  let instance = Workload.generate spec in
  let c1 = Fusion_query.Query.condition instance.Workload.query 0 in
  let c2 = Fusion_query.Query.condition instance.Workload.query 1 in
  Array.iter
    (fun s ->
      let relation = Source.relation s in
      let schema = Relation.schema relation in
      let sel c = Relation.select_items relation (fun t -> Fusion_cond.Cond.eval schema c t) in
      Alcotest.check Helpers.item_set "identical matching sets" (sel c1) (sel c2))
    instance.Workload.sources

let test_zipf_skews_item_popularity () =
  let spec =
    {
      Workload.default_spec with
      n_sources = 1;
      universe = 1000;
      tuples_per_source = (5000, 5000);
      item_skew = 1.2;
      seed = 19;
    }
  in
  let instance = Workload.generate spec in
  let relation = Source.relation instance.Workload.sources.(0) in
  (* Under heavy skew, far fewer distinct items than draws. *)
  Alcotest.(check bool) "duplicates concentrate" true
    (Relation.distinct_item_count relation < 700)

let test_fig1_answer () =
  let instance = Workload.fig1 () in
  Alcotest.check Helpers.item_set "paper's answer"
    (Helpers.items_of_strings [ "J55"; "T21" ])
    (Fusion_core.Reference.answer_query ~sources:instance.Workload.sources
       instance.Workload.query)

(* Determinism must cover the whole instance, not just the item sets:
   two generations from one spec agree tuple for tuple, condition for
   condition, and on every source's network profile. *)
let test_fully_deterministic () =
  let a = Workload.generate Workload.default_spec in
  let b = Workload.generate Workload.default_spec in
  Alcotest.(check bool) "same query" true
    (Fusion_query.Query.equal a.Workload.query b.Workload.query);
  Array.iter2
    (fun c1 c2 ->
      Alcotest.(check string) "same condition text"
        (Fusion_cond.Cond.to_string c1) (Fusion_cond.Cond.to_string c2))
    (Fusion_query.Query.conditions a.Workload.query)
    (Fusion_query.Query.conditions b.Workload.query);
  Array.iter2
    (fun s1 s2 ->
      let r1 = Source.relation s1 and r2 = Source.relation s2 in
      Alcotest.(check int) "same cardinality" (Relation.cardinality r1)
        (Relation.cardinality r2);
      Alcotest.(check bool) "same tuples" true
        (Relation.tuples r1 = Relation.tuples r2);
      Alcotest.(check bool) "same profile" true
        (Source.profile s1 = Source.profile s2))
    a.Workload.sources b.Workload.sources

(* Every condition the generator invents must speak about attributes
   the generated schema actually declares — over the whole spec
   space. *)
let conds_reference_declared_attrs =
  Helpers.qtest ~count:60 "conditions reference declared attributes" Helpers.spec_gen
    Helpers.spec_print (fun spec ->
      let instance = Workload.generate spec in
      let schema = instance.Workload.schema in
      Array.for_all
        (fun cond ->
          List.for_all (fun attr -> Schema.mem schema attr)
            (Fusion_cond.Cond.attrs cond))
        (Fusion_query.Query.conditions instance.Workload.query))

let suite =
  [
    Alcotest.test_case "deterministic in seed" `Quick test_deterministic;
    Alcotest.test_case "fully deterministic instance" `Quick test_fully_deterministic;
    conds_reference_declared_attrs;
    Alcotest.test_case "seed changes world" `Quick test_seed_changes_world;
    Alcotest.test_case "instance shape" `Quick test_shape;
    Alcotest.test_case "selectivity honored" `Quick test_selectivity_honored;
    Alcotest.test_case "heterogeneity knobs" `Quick test_heterogeneity_fractions;
    Alcotest.test_case "correlation = 1 duplicates conditions" `Quick test_correlation_extreme;
    Alcotest.test_case "zipf item popularity" `Quick test_zipf_skews_item_popularity;
    Alcotest.test_case "figure 1 fixture answer" `Quick test_fig1_answer;
  ]
