(* The distributed mediator's oracle-equivalence harness.

   The single-mediator [Mediator.run] is the oracle: for every random
   (catalog, query, shard-count, fault-seed) draw, the sharded
   coordinator must produce the identical item set — fresh (staleness
   0) and complete (not partial) — however the slices, replicas, fault
   draws and hedges fell. The degenerate one-shard one-replica
   configuration must match the oracle's accounting too, not just its
   answer. *)

open Fusion_data
open Fusion_dist
module Workload = Fusion_workload.Workload
module Source = Fusion_source.Source
module Mediator = Fusion_mediator.Mediator
module Reference = Fusion_core.Reference
module Optimized = Fusion_core.Optimized
module Fragment = Fusion_plan.Fragment
module Plan_text = Fusion_plan.Plan_text
module Profile = Fusion_net.Profile
module Prng = Fusion_stats.Prng
module Metrics = Fusion_obs.Metrics
module Prom = Fusion_obs.Prom
module Summary = Fusion_obs.Summary

let shard_counts = [ 1; 2; 3; 5 ]

let cluster_of ?replicas ?profile_of ?staleness_of ~shards (instance : Workload.instance)
    =
  Helpers.check_ok
    (Cluster.create ?replicas ?profile_of ?staleness_of ~shards
       (Array.to_list instance.Workload.sources))

let truth (instance : Workload.instance) =
  Reference.answer_query ~sources:instance.Workload.sources instance.Workload.query

let coord_run ?config cluster (instance : Workload.instance) =
  Helpers.check_ok (Coordinator.run ?config cluster instance.Workload.query)

(* Fault every replica of the cluster independently, seeds derived from
   one draw the way test_faults seeds per-source injectors. *)
let fault_all_replicas ~probability ~fault_seed cluster =
  for shard = 0 to Cluster.shards cluster - 1 do
    for j = 0 to Cluster.n_sources cluster - 1 do
      let g = Cluster.group cluster ~shard ~source:j in
      for r = 0 to Replica.size g - 1 do
        let lane = Cluster.lane cluster ~shard ~source:j ~replica:r in
        Cluster.set_fault cluster ~shard ~source:j ~replica:r
          (Some { Source.probability; prng = Prng.create (fault_seed + (31 * lane)) })
      done
    done
  done

(* --- the oracle-equivalence property (the ≥200-case suite) --------------- *)

(* 60 random (catalog, query) draws × shard counts {1,2,3,5} = 240
   oracle comparisons per test run. *)
let qcheck_oracle_equivalence =
  Helpers.qtest ~count:60 "coordinator ≡ Mediator.run across shard counts"
    Helpers.spec_gen Helpers.spec_print (fun spec ->
      let instance = Workload.generate spec in
      let oracle =
        (Helpers.check_ok (Mediator.run (Mediator.create_exn (Array.to_list instance.Workload.sources)) instance.Workload.query))
          .Mediator.answer
      in
      List.for_all
        (fun shards ->
          let cluster = cluster_of ~shards instance in
          let r = coord_run cluster instance in
          Item_set.equal r.Coordinator.r_answer oracle
          && r.Coordinator.r_staleness = 0.0
          && (not r.Coordinator.r_partial)
          && r.Coordinator.r_failures = 0)
        shard_counts)

let qcheck_oracle_equivalence_with_replicas =
  Helpers.qtest ~count:30 "replicated routing keeps answers exact"
    QCheck2.Gen.(pair Helpers.spec_gen (oneofl [ 2; 3 ]))
    (fun (spec, replicas) -> Helpers.spec_print spec ^ Printf.sprintf " replicas=%d" replicas)
    (fun (spec, replicas) ->
      let instance = Workload.generate spec in
      let expected = truth instance in
      List.for_all
        (fun routing ->
          let cluster = cluster_of ~shards:3 ~replicas instance in
          let config = { Coordinator.Config.default with Coordinator.Config.routing } in
          let r = coord_run ~config cluster instance in
          Item_set.equal r.Coordinator.r_answer expected)
        [ Replica.Primary; Replica.Round_robin; Replica.Least_cost ])

let qcheck_oracle_equivalence_under_faults =
  Helpers.qtest ~count:30 "flaky replicas + retries ≡ clean oracle"
    QCheck2.Gen.(triple Helpers.spec_gen (int_range 0 1_000_000) (oneofl [ 2; 3; 5 ]))
    (fun (spec, fault_seed, shards) ->
      Helpers.spec_print spec ^ Printf.sprintf " fault=%d shards=%d" fault_seed shards)
    (fun (spec, fault_seed, shards) ->
      let instance = Workload.generate spec in
      let expected = truth instance in
      let cluster = cluster_of ~shards ~replicas:2 instance in
      fault_all_replicas ~probability:0.2 ~fault_seed cluster;
      let config =
        { Coordinator.Config.default with Coordinator.Config.retries = 200 }
      in
      let r = coord_run ~config cluster instance in
      Item_set.equal r.Coordinator.r_answer expected
      && (not r.Coordinator.r_partial)
      && r.Coordinator.r_staleness = 0.0)

(* --- the degenerate case must match the oracle's accounting ------------- *)

let test_single_shard_single_replica_pinned () =
  List.iter
    (fun seed ->
      let instance = Workload.generate { Workload.default_spec with seed } in
      let cluster = cluster_of ~shards:1 instance in
      let oracle =
        Helpers.check_ok
          (Mediator.run (Cluster.mediator cluster) instance.Workload.query)
      in
      let r = coord_run cluster instance in
      Alcotest.check Helpers.item_set "same answer" oracle.Mediator.answer
        r.Coordinator.r_answer;
      Alcotest.(check (float 1e-6)) "same actual cost" oracle.Mediator.actual_cost
        r.Coordinator.r_total_cost;
      Alcotest.(check int) "no failures" oracle.Mediator.failures r.Coordinator.r_failures;
      Alcotest.(check bool) "not partial" oracle.Mediator.partial r.Coordinator.r_partial)
    [ 3; 7; 11; 42 ]

let test_single_shard_fault_draws_pinned () =
  (* Identical fault injectors on the oracle's source j and the
     degenerate cluster's replica (0, j, 0): the coordinator issues the
     oracle's exact request sequence, so failures and costs coincide. *)
  let fault_seed = 77 in
  let instance = Workload.generate { Workload.default_spec with seed = 13 } in
  let cluster = cluster_of ~shards:1 instance in
  for j = 0 to Cluster.n_sources cluster - 1 do
    Cluster.set_fault cluster ~shard:0 ~source:j ~replica:0
      (Some { Source.probability = 0.3; prng = Prng.create (fault_seed + (31 * j)) })
  done;
  let config = { Coordinator.Config.default with Coordinator.Config.retries = 100 } in
  let r = coord_run ~config cluster instance in
  Array.iteri
    (fun j s ->
      Source.set_fault s
        (Some { Source.probability = 0.3; prng = Prng.create (fault_seed + (31 * j)) }))
    instance.Workload.sources;
  let oracle =
    Helpers.check_ok
      (Mediator.run
         ~config:{ Mediator.Config.default with Mediator.Config.retries = 100 }
         (Cluster.mediator cluster) instance.Workload.query)
  in
  Array.iter (fun s -> Source.set_fault s None) instance.Workload.sources;
  Alcotest.check Helpers.item_set "same answer" oracle.Mediator.answer
    r.Coordinator.r_answer;
  Alcotest.(check int) "same fault draws" oracle.Mediator.failures
    r.Coordinator.r_failures;
  Alcotest.(check (float 1e-6)) "same cost (failed attempts charged alike)"
    oracle.Mediator.actual_cost r.Coordinator.r_total_cost;
  Alcotest.(check bool) "saw failures" true (r.Coordinator.r_failures > 0)

(* --- churn: dead replicas, dead shards, stragglers ----------------------- *)

let test_failover_survives_dead_primaries () =
  let instance = Workload.generate { Workload.default_spec with seed = 17 } in
  let expected = truth instance in
  let cluster = cluster_of ~shards:2 ~replicas:2 instance in
  for shard = 0 to 1 do
    for j = 0 to Cluster.n_sources cluster - 1 do
      Cluster.kill cluster ~shard ~source:j ~replica:0
    done
  done;
  let r = coord_run cluster instance in
  Alcotest.check Helpers.item_set "failover answer exact" expected
    r.Coordinator.r_answer;
  Alcotest.(check bool) "not partial" false r.Coordinator.r_partial;
  Alcotest.(check bool) "failovers recorded" true (r.Coordinator.r_failovers > 0);
  Alcotest.(check bool) "failures recorded" true (r.Coordinator.r_failures > 0)

let test_replica_killed_mid_scatter () =
  (* The first shard's groups lose their primary, later shards keep
     theirs: only the wounded shard pays failovers, everyone stays
     exact. *)
  let instance = Workload.generate { Workload.default_spec with seed = 19 } in
  let expected = truth instance in
  let cluster = cluster_of ~shards:3 ~replicas:2 instance in
  for j = 0 to Cluster.n_sources cluster - 1 do
    Cluster.kill cluster ~shard:0 ~source:j ~replica:0
  done;
  let r = coord_run cluster instance in
  Alcotest.check Helpers.item_set "exact answer" expected r.Coordinator.r_answer;
  let s0 = List.nth r.Coordinator.r_shards 0 in
  let s1 = List.nth r.Coordinator.r_shards 1 in
  Alcotest.(check bool) "wounded shard failed over" true
    (s0.Coordinator.sr_failovers > 0);
  Alcotest.(check int) "healthy shard did not" 0 s1.Coordinator.sr_failovers

let test_dead_shard_partial_answer () =
  let instance = Workload.generate { Workload.default_spec with seed = 23 } in
  let dead = 1 in
  let cluster = cluster_of ~shards:3 instance in
  Cluster.kill_shard cluster ~shard:dead;
  let config =
    { Coordinator.Config.default with Coordinator.Config.on_exhausted = `Partial }
  in
  let r = coord_run ~config cluster instance in
  Alcotest.(check bool) "partial flagged" true r.Coordinator.r_partial;
  Alcotest.(check bool) "subset of the truth" true
    (Item_set.subset r.Coordinator.r_answer (truth instance));
  (* Exact on the surviving slices: each alive shard's answer equals the
     reference answer over that shard's replica sources. *)
  let expected_alive =
    List.filter_map
      (fun shard ->
        if shard = dead then None
        else
          Some
            (Reference.answer_query
               ~sources:
                 (Array.init (Cluster.n_sources cluster) (fun j ->
                      Cluster.replica cluster ~shard ~source:j ~replica:0))
               instance.Workload.query))
      [ 0; 1; 2 ]
  in
  Alcotest.check Helpers.item_set "alive slices exact"
    (Fragment.merge_answers expected_alive)
    r.Coordinator.r_answer;
  let dead_report = List.nth r.Coordinator.r_shards dead in
  Alcotest.check Helpers.item_set "dead shard contributes nothing" Item_set.empty
    dead_report.Coordinator.sr_answer;
  Alcotest.(check bool) "dead shard flagged" true dead_report.Coordinator.sr_partial

let straggler_profile ~shard:_ ~source:_ ~replica profile =
  if replica = 0 then Profile.straggler profile else profile

let test_hedging_beats_stragglers () =
  let instance = Workload.generate { Workload.default_spec with seed = 29 } in
  let expected = truth instance in
  let run_with hedge =
    let cluster =
      cluster_of ~shards:2 ~replicas:2 ~profile_of:straggler_profile instance
    in
    coord_run
      ~config:{ Coordinator.Config.default with Coordinator.Config.hedge }
      cluster instance
  in
  let plain = run_with None in
  let hedged = run_with (Some 1.3) in
  Alcotest.check Helpers.item_set "plain exact" expected plain.Coordinator.r_answer;
  Alcotest.check Helpers.item_set "hedged exact" expected hedged.Coordinator.r_answer;
  Alcotest.(check int) "no hedges without the option" 0 plain.Coordinator.r_hedges;
  Alcotest.(check bool) "hedges fired" true (hedged.Coordinator.r_hedges > 0);
  Alcotest.(check bool) "hedges won" true (hedged.Coordinator.r_hedge_wins > 0);
  Alcotest.(check bool)
    (Printf.sprintf "hedged makespan %.1f < straggler makespan %.1f"
       hedged.Coordinator.r_makespan plain.Coordinator.r_makespan)
    true
    (hedged.Coordinator.r_makespan < plain.Coordinator.r_makespan)

let test_hedging_never_duplicates_answers () =
  (* Shard answers must stay pairwise disjoint even when requests are
     duplicated: the union's cardinality equals the sum of the parts. *)
  let instance = Workload.generate { Workload.default_spec with seed = 31 } in
  let cluster =
    cluster_of ~shards:3 ~replicas:2 ~profile_of:straggler_profile instance
  in
  let r =
    coord_run
      ~config:{ Coordinator.Config.default with Coordinator.Config.hedge = Some 1.3 }
      cluster instance
  in
  let parts = List.map (fun s -> s.Coordinator.sr_answer) r.Coordinator.r_shards in
  let sum = List.fold_left (fun a s -> a + Item_set.cardinal s) 0 parts in
  Alcotest.(check int) "Σ|shard answers| = |∪ shard answers|" sum
    (Item_set.cardinal r.Coordinator.r_answer);
  Alcotest.check Helpers.item_set "still exact" (truth instance) r.Coordinator.r_answer

let test_staleness_surfaces_stale_replicas () =
  let instance = Workload.generate { Workload.default_spec with seed = 37 } in
  let cluster =
    cluster_of ~shards:2 ~replicas:2
      ~staleness_of:(fun ~shard:_ ~source:_ ~replica -> if replica = 0 then 45.0 else 0.0)
      instance
  in
  let r = coord_run cluster instance in
  (* Primary routing touches replica 0 everywhere: the stalest replica
     consulted bounds the report. *)
  Alcotest.(check (float 1e-9)) "staleness bound surfaced" 45.0 r.Coordinator.r_staleness

(* --- determinism --------------------------------------------------------- *)

let test_same_seed_byte_identical_report () =
  let render () =
    let instance = Workload.generate { Workload.default_spec with seed = 41 } in
    let cluster = cluster_of ~shards:3 ~replicas:2 instance in
    fault_all_replicas ~probability:0.15 ~fault_seed:99 cluster;
    let config =
      {
        Coordinator.Config.default with
        Coordinator.Config.retries = 50;
        routing = Replica.Least_cost;
        hedge = Some 2.0;
      }
    in
    Format.asprintf "%a" Coordinator.pp_report (coord_run ~config cluster instance)
  in
  let first = render () and second = render () in
  Alcotest.(check string) "byte-identical report (makespan, busy, path)" first second

(* --- partitioning and fragments ------------------------------------------ *)

let qcheck_partition_is_a_partition =
  Helpers.qtest ~count:40 "slices are disjoint and lossless"
    QCheck2.Gen.(pair Helpers.spec_gen (oneofl shard_counts))
    (fun (spec, shards) -> Helpers.spec_print spec ^ Printf.sprintf " shards=%d" shards)
    (fun (spec, shards) ->
      let instance = Workload.generate spec in
      Array.for_all
        (fun s ->
          let relation = Source.relation s in
          let slices =
            List.init shards (fun shard -> Partition.slice ~shards ~shard relation)
          in
          let sizes = List.map Relation.cardinality slices in
          List.fold_left ( + ) 0 sizes = Relation.cardinality relation
          &&
          (* Disjoint on merge ids: every tuple's item lands in exactly
             the slice the hash names. *)
          List.for_all2
            (fun shard slice ->
              List.for_all
                (fun tuple ->
                  Partition.shard_of_value ~shards
                    (Relation.intern relation)
                    (Fusion_data.Tuple.item (Relation.schema slice) tuple)
                  = shard)
                (Relation.tuples slice))
            (List.init shards Fun.id) slices)
        instance.Workload.sources)

let test_single_shard_slice_is_identity () =
  let instance = Workload.generate { Workload.default_spec with seed = 43 } in
  Array.iter
    (fun s ->
      let relation = Source.relation s in
      let slice = Partition.slice ~shards:1 ~shard:0 relation in
      Alcotest.(check int) "same cardinality" (Relation.cardinality relation)
        (Relation.cardinality slice);
      Alcotest.(check bool) "same tuples in order" true
        (List.for_all2
           (fun a b -> a = b)
           (Relation.tuples relation) (Relation.tuples slice)))
    instance.Workload.sources

let qcheck_fragment_wire_round_trip =
  Helpers.qtest ~count:40 "fragments survive the wire" Helpers.spec_gen
    Helpers.spec_print (fun spec ->
      let instance = Workload.generate spec in
      let med = Mediator.create_exn (Array.to_list instance.Workload.sources) in
      let prepared = Helpers.check_ok (Mediator.plan_for med instance.Workload.query) in
      let plan = prepared.Mediator.prep_optimized.Optimized.plan in
      List.for_all
        (fun shard ->
          let f = Fragment.of_plan ~shard plan in
          match Fragment.ship f with
          | Error _ -> false
          | Ok f' ->
            f'.Fragment.shard = shard
            && Plan_text.to_string f'.Fragment.plan = Plan_text.to_string plan
            && f'.Fragment.conds_used = f.Fragment.conds_used
            && f'.Fragment.sources_used = f.Fragment.sources_used)
        [ 0; 1; 7 ])

let test_local_plan_mode_exact () =
  let instance = Workload.generate { Workload.default_spec with seed = 47 } in
  let cluster = cluster_of ~shards:3 instance in
  let r =
    coord_run
      ~config:{ Coordinator.Config.default with Coordinator.Config.plan_mode = `Local }
      cluster instance
  in
  Alcotest.check Helpers.item_set "per-shard planning stays exact" (truth instance)
    r.Coordinator.r_answer

(* --- catalog replica groups ---------------------------------------------- *)

let test_catalog_replicas_key () =
  let instance = Workload.generate { Workload.default_spec with Workload.n_sources = 2; seed = 53 } in
  let dir = Filename.temp_file "fusion_dist" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Workload.save ~dir instance;
  let text =
    In_channel.with_open_text (Filename.concat dir "catalog.ini") In_channel.input_all
  in
  (* Give the first source two replicas via the catalog key. *)
  let groups =
    Helpers.check_ok
      (Fusion_source.Catalog.parse_groups ~dir
         (Str_find.replace_first text "[source R1]" "[source R1]\nreplicas = 2"))
  in
  Alcotest.(check (list int)) "replica counts parsed" [ 2; 1 ] (List.map snd groups);
  let cluster = Helpers.check_ok (Cluster.of_groups ~shards:2 groups) in
  Alcotest.(check int) "stride = max group" 2 (Cluster.stride cluster);
  let r = coord_run cluster instance in
  Alcotest.check Helpers.item_set "grouped cluster exact" (truth instance)
    r.Coordinator.r_answer

(* --- per-shard serving metrics (the fusion_serve_* label fix) ------------ *)

let test_serve_metrics_carry_shard_labels () =
  let instance = Workload.generate { Workload.default_spec with seed = 59 } in
  let cluster = cluster_of ~shards:2 instance in
  let registry = Metrics.create () in
  let fleet = Fleet.create cluster in
  Metrics.with_registry registry (fun () ->
      ignore (Helpers.check_ok (Fleet.submit fleet ~at:0.0 instance.Workload.query));
      Fleet.drain fleet);
  let text = Prom.of_registry registry in
  let has s = Option.is_some (Str_find.find_substring text s) in
  Alcotest.(check bool) "s0 completed series" true
    (has "fusion_serve_completed_total{shard=\"s0\",tenant=\"default\"} 1");
  Alcotest.(check bool) "s1 completed series" true
    (has "fusion_serve_completed_total{shard=\"s1\",tenant=\"default\"} 1");
  Alcotest.(check bool) "s0 submitted series" true
    (has "fusion_serve_submitted_total{shard=\"s0\",tenant=\"default\"} 1");
  Alcotest.(check bool) "dispatched kept apart per shard" true
    (has "fusion_serve_dispatched_total{shard=\"s0\"" && has "fusion_serve_dispatched_total{shard=\"s1\"");
  (* The per-tenant summaries carry the shard label too. *)
  let _, ts = List.hd (Fusion_serve.Server.tenants (Fleet.server fleet 0)) in
  Alcotest.(check (option string)) "summary labeled" (Some "s0")
    (Summary.label ts.Fusion_serve.Server.ts_summary)

let test_unsharded_serve_metrics_unchanged () =
  (* Without a shard label the series look exactly as before the fix. *)
  let instance = Workload.generate { Workload.default_spec with seed = 61 } in
  let registry = Metrics.create () in
  let server =
    Fusion_mediator.Mediator.Server.create
      (Fusion_mediator.Mediator.create_exn (Array.to_list instance.Workload.sources))
  in
  Metrics.with_registry registry (fun () ->
      ignore
        (Helpers.check_ok
           (Fusion_mediator.Mediator.Server.submit server ~at:0.0 instance.Workload.query));
      Fusion_mediator.Mediator.Server.drain server);
  let text = Prom.of_registry registry in
  Alcotest.(check bool) "no shard label" true
    (Option.is_some
       (Str_find.find_substring text "fusion_serve_completed_total{tenant=\"default\"} 1"))

let test_summary_label () =
  let s = Summary.create ~label:"s7" () in
  Alcotest.(check (option string)) "label stored" (Some "s7") (Summary.label s);
  Summary.add s ~cost:10.0 ~response_time:5.0 ();
  let text = Format.asprintf "%a" Summary.pp s in
  Alcotest.(check bool) "label rendered" true
    (Option.is_some (Str_find.find_substring text "[s7]"));
  Alcotest.(check (option string)) "unlabeled by default" None
    (Summary.label (Summary.create ()))

(* --- the sharded serving path -------------------------------------------- *)

let test_fleet_joins_shard_answers () =
  let instance = Workload.generate { Workload.default_spec with seed = 67 } in
  let cluster = cluster_of ~shards:3 instance in
  let fleet = Fleet.create cluster in
  let id = Helpers.check_ok (Fleet.submit fleet ~at:0.0 instance.Workload.query) in
  Fleet.drain fleet;
  match Fleet.outcomes fleet with
  | [ o ] ->
    Alcotest.(check int) "id" id o.Fleet.f_id;
    Alcotest.(check (option Helpers.item_set)) "joined answer exact"
      (Some (truth instance)) o.Fleet.f_answer;
    Alcotest.(check bool) "cost accounted" true (o.Fleet.f_cost > 0.0);
    Alcotest.(check bool) "not partial" false o.Fleet.f_partial
  | os -> Alcotest.failf "expected one outcome, got %d" (List.length os)

let suite =
  [
    qcheck_oracle_equivalence;
    qcheck_oracle_equivalence_with_replicas;
    qcheck_oracle_equivalence_under_faults;
    Alcotest.test_case "1 shard × 1 replica matches oracle accounting" `Quick
      test_single_shard_single_replica_pinned;
    Alcotest.test_case "1 shard: identical fault draws, identical report" `Quick
      test_single_shard_fault_draws_pinned;
    Alcotest.test_case "failover survives dead primaries" `Quick
      test_failover_survives_dead_primaries;
    Alcotest.test_case "replica killed mid-scatter" `Quick test_replica_killed_mid_scatter;
    Alcotest.test_case "dead shard ⇒ partial, alive slices exact" `Quick
      test_dead_shard_partial_answer;
    Alcotest.test_case "hedging beats stragglers" `Quick test_hedging_beats_stragglers;
    Alcotest.test_case "hedging never duplicates answers" `Quick
      test_hedging_never_duplicates_answers;
    Alcotest.test_case "staleness of consulted replicas surfaces" `Quick
      test_staleness_surfaces_stale_replicas;
    Alcotest.test_case "same seed ⇒ byte-identical report" `Quick
      test_same_seed_byte_identical_report;
    qcheck_partition_is_a_partition;
    Alcotest.test_case "single-shard slice is the identity" `Quick
      test_single_shard_slice_is_identity;
    qcheck_fragment_wire_round_trip;
    Alcotest.test_case "local plan mode stays exact" `Quick test_local_plan_mode_exact;
    Alcotest.test_case "catalog replicas key builds groups" `Quick
      test_catalog_replicas_key;
    Alcotest.test_case "fusion_serve_* metrics distinguish shards" `Quick
      test_serve_metrics_carry_shard_labels;
    Alcotest.test_case "unsharded serve metrics unchanged" `Quick
      test_unsharded_serve_metrics_unchanged;
    Alcotest.test_case "summary labels" `Quick test_summary_label;
    Alcotest.test_case "fleet joins shard answers" `Quick test_fleet_joins_shard_answers;
  ]
