let () =
  Alcotest.run "fusion"
    [
      ("value", Test_value.suite);
      ("data", Test_data.suite);
      ("intern", Test_intern.suite);
      ("cond", Test_cond.suite);
      ("stats", Test_stats.suite);
      ("source", Test_source.suite);
      ("cost", Test_cost.suite);
      ("query", Test_query.suite);
      ("plan", Test_plan.suite);
      ("exec", Test_exec.suite);
      ("async", Test_async.suite);
      ("optimizer", Test_optimizer.suite);
      ("postopt", Test_postopt.suite);
      ("workload", Test_workload.suite);
      ("mediator", Test_mediator.suite);
      ("adaptive", Test_adaptive.suite);
      ("response", Test_response.suite);
      ("plan_cost", Test_plan_cost.suite);
      ("simplify", Test_simplify.suite);
      ("sim", Test_sim.suite);
      ("session", Test_session.suite);
      ("histogram", Test_histogram.suite);
      ("plan_text", Test_plan_text.suite);
      ("view", Test_view.suite);
      ("calibration", Test_calibration.suite);
      ("lexer", Test_lexer.suite);
      ("faults", Test_faults.suite);
      ("oem", Test_oem.suite);
      ("robust", Test_robust.suite);
      ("serve", Test_serve.suite);
      ("obs", Test_obs.suite);
      ("analyze", Test_analyze.suite);
      ("props", Test_props.suite);
      ("golden", Test_golden.suite);
    ]
