(* Substring search helper for test assertions. *)

let find_substring haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i =
    if i + n > h then None
    else if String.sub haystack i n = needle then Some i
    else go (i + 1)
  in
  if n = 0 then Some 0 else go 0

let replace_first haystack needle replacement =
  match find_substring haystack needle with
  | None -> haystack
  | Some i ->
    String.sub haystack 0 i
    ^ replacement
    ^ String.sub haystack
        (i + String.length needle)
        (String.length haystack - i - String.length needle)
