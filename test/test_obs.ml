(* The observability stack: Trace collectors and span structure, the
   Metrics registry, JSONL export/parse round-trips, and the end-to-end
   acceptance properties — a traced mediator run whose request spans
   reproduce the meter accounting exactly, at zero cost when off. *)

open Fusion_core
module Workload = Fusion_workload.Workload
module Mediator = Fusion_mediator.Mediator
module Trace = Fusion_obs.Trace
module Metrics = Fusion_obs.Metrics
module Json = Fusion_obs.Json
module Jsonl = Fusion_obs.Jsonl

(* --- Trace unit tests ---------------------------------------------------- *)

let test_trace_disabled_is_noop () =
  Alcotest.(check bool) "not enabled" false (Trace.enabled ());
  let result =
    Trace.span Trace.Step "noop" (fun ctx ->
        Alcotest.(check bool) "ctx inactive" false (Trace.active ctx);
        Trace.attr ctx "k" (Trace.Int 1);
        Trace.charge ctx 5.0;
        42)
  in
  Alcotest.(check int) "value passes through" 42 result

let test_trace_nesting_and_attrs () =
  let c = Trace.create ~clock:(fun () -> 0.0) () in
  Trace.with_collector c (fun () ->
      Trace.span Trace.Run "outer" (fun ctx ->
          Trace.attr ctx "algo" (Trace.Str "sja+");
          Trace.span Trace.Step "inner" (fun ctx ->
              Trace.charge ctx 3.0;
              Trace.attrs ctx [ ("cost", Trace.Float 3.0); ("n", Trace.Int 2) ]);
          Trace.span Trace.Step "sibling" (fun _ -> ())));
  match Trace.spans c with
  | [ inner; sibling; outer ] ->
    (* Finish order: children close before their parent. *)
    Alcotest.(check string) "inner name" "inner" inner.Trace.name;
    Alcotest.(check (option int)) "inner parent" (Some outer.Trace.id) inner.Trace.parent;
    Alcotest.(check (option int)) "sibling parent" (Some outer.Trace.id) sibling.Trace.parent;
    Alcotest.(check (option int)) "outer is root" None outer.Trace.parent;
    Alcotest.(check (float 1e-9)) "inner cost" 3.0 (Trace.cost inner);
    Alcotest.(check (float 1e-9)) "outer absorbs charge" 3.0 (Trace.cost outer);
    Alcotest.(check (float 1e-9)) "sibling free" 0.0 (Trace.cost sibling);
    (match Trace.find_attr inner "n" with
    | Some (Trace.Int 2) -> ()
    | _ -> Alcotest.fail "attr n lost");
    Alcotest.(check int) "outer children" 2
      (List.length (Trace.children (Trace.spans c) outer.Trace.id));
    Alcotest.(check int) "one root" 1 (List.length (Trace.roots (Trace.spans c)))
  | spans -> Alcotest.failf "expected 3 spans, got %d" (List.length spans)

let test_trace_finishes_on_exception () =
  let c = Trace.create () in
  (try
     Trace.with_collector c (fun () ->
         Trace.span Trace.Run "outer" (fun _ ->
             Trace.span Trace.Step "inner" (fun _ -> failwith "boom")))
   with Failure _ -> ());
  Alcotest.(check int) "both spans finished" 2 (List.length (Trace.spans c));
  Alcotest.(check bool) "collector not installed afterwards" false (Trace.enabled ())

let test_trace_mark_brackets () =
  let c = Trace.create () in
  Trace.with_collector c (fun () ->
      Trace.span Trace.Step "before" (fun _ -> ());
      let m = Trace.mark c in
      Trace.span Trace.Step "after" (fun _ -> ());
      match Trace.spans_since c m with
      | [ s ] -> Alcotest.(check string) "only the bracketed span" "after" s.Trace.name
      | l -> Alcotest.failf "expected 1 span, got %d" (List.length l))

let test_trace_backwards_clock () =
  (* A real clock can step backwards (NTP) between span open and close;
     no span may finish before it starts. *)
  let now = ref 100.0 in
  let clock () =
    let v = !now in
    now := v -. 25.0;
    v
  in
  let c = Trace.create ~clock () in
  Trace.with_collector c (fun () ->
      Trace.span Trace.Run "outer" (fun _ ->
          Trace.span Trace.Step "inner" (fun _ -> ())));
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "%s finishes at or after start" s.Trace.name)
        true
        (s.Trace.finish_wall >= s.Trace.start_wall))
    (Trace.spans c)

let test_summary_real_clock_latencies () =
  (* A wall-clock latency can come out negative (backwards clock step)
     or non-finite; percentiles must stay finite and count every run. *)
  let module Summary = Fusion_obs.Summary in
  let s = Summary.create () in
  Summary.add s ~cost:1.0 ~response_time:(-5.0) ();
  Summary.add s ~cost:2.0 ~response_time:3.0 ();
  Summary.add s ~cost:3.0 ~response_time:7.0 ();
  let p = Summary.latency_percentiles s in
  Alcotest.(check int) "finite runs counted" 3 p.Summary.n;
  List.iter
    (fun (name, v) ->
      Alcotest.(check bool) (name ^ " finite") true (Float.is_finite v);
      Alcotest.(check bool) (name ^ " non-negative") true (v >= 0.0))
    [ ("p50", p.Summary.p50); ("p90", p.Summary.p90); ("p99", p.Summary.p99);
      ("mean", p.Summary.mean); ("max", p.Summary.max) ];
  (* All-negative input degrades to the all-zero distribution, not NaN. *)
  let s2 = Summary.create () in
  Summary.add s2 ~cost:1.0 ~response_time:(-1.0) ();
  let p2 = Summary.latency_percentiles s2 in
  Alcotest.(check int) "clamped run counted" 1 p2.Summary.n;
  Alcotest.(check (float 1e-9)) "clamped max" 0.0 p2.Summary.max

let test_kind_strings () =
  List.iter
    (fun k ->
      Alcotest.(check bool) "kind round-trips" true
        (Trace.kind_of_string (Trace.kind_to_string k) = k))
    [ Trace.Run; Trace.Optimize; Trace.Postopt; Trace.Step; Trace.Request;
      Trace.Phase "warmup" ]

(* --- Metrics ------------------------------------------------------------- *)

let test_metrics_series () =
  let r = Metrics.create () in
  Metrics.incr r ~labels:[ ("a", "1"); ("b", "2") ] "reqs";
  (* Label order must not split the series. *)
  Metrics.incr r ~labels:[ ("b", "2"); ("a", "1") ] "reqs" ~by:2.0;
  Metrics.gauge r "depth" 7.0;
  Metrics.observe r "sizes" 10;
  Metrics.observe r "sizes" 200;
  let samples = Metrics.snapshot r in
  Alcotest.(check int) "three series" 3 (List.length samples);
  List.iter
    (fun s ->
      match s.Metrics.name, s.Metrics.value with
      | "reqs", Metrics.Vcounter v -> Alcotest.(check (float 1e-9)) "counter" 3.0 v
      | "depth", Metrics.Vgauge v -> Alcotest.(check (float 1e-9)) "gauge" 7.0 v
      | "sizes", Metrics.Vhist h ->
        Alcotest.(check (float 1e-9)) "hist total" 2.0
          (Array.fold_left ( +. ) 0.0 (Fusion_stats.Histogram.counts h))
      | name, _ -> Alcotest.failf "unexpected series %s" name)
    samples

let test_metrics_record_when_off () =
  (* [record] must be a no-op with no registry installed. *)
  Alcotest.(check bool) "none installed" true (Metrics.installed () = None);
  Metrics.record (fun _ -> Alcotest.fail "record ran without a registry")

(* Four domains hammering one registry — same counter series, same
   gauge, same histogram — must lose nothing: the registry serializes
   access with an internal mutex. Against the earlier unguarded
   Hashtbl this crashes or drops increments. *)
let test_metrics_domain_hammer () =
  let r = Metrics.create () in
  let domains = 4 and per = 25_000 in
  let workers =
    List.init domains (fun _ ->
        Domain.spawn (fun () ->
            for i = 1 to per do
              Metrics.incr r ~labels:[ ("shared", "yes") ] "hammer_total";
              Metrics.gauge r "hammer_depth" (float_of_int i);
              Metrics.observe r
                ~spec:{ Metrics.lo = 0; hi = 100; buckets = 10 }
                "hammer_sizes" (i mod 100)
            done))
  in
  List.iter Domain.join workers;
  let samples = Metrics.snapshot r in
  Alcotest.(check int) "three series despite the contention" 3
    (List.length samples);
  List.iter
    (fun s ->
      match (s.Metrics.name, s.Metrics.value) with
      | "hammer_total", Metrics.Vcounter v ->
        Alcotest.(check (float 1e-9)) "every increment counted"
          (float_of_int (domains * per)) v
      | "hammer_depth", Metrics.Vgauge v ->
        Alcotest.(check bool) "gauge holds one of the written values" true
          (v >= 1.0 && v <= float_of_int per)
      | "hammer_sizes", Metrics.Vhist h ->
        Alcotest.(check (float 1e-9)) "every observation bucketed"
          (float_of_int (domains * per))
          (Array.fold_left ( +. ) 0.0 (Fusion_stats.Histogram.counts h))
      | name, _ -> Alcotest.failf "unexpected series %s" name)
    samples

(* install/uninstall race: flipping the registry while another domain
   records through [Metrics.record] must never crash, and everything
   recorded while a registry was installed is accounted there. *)
let test_metrics_install_race () =
  let r = Metrics.create () in
  Metrics.install r;
  let stop = Atomic.make false in
  let flipper =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          Metrics.uninstall ();
          Metrics.install r
        done)
  in
  let recorded () =
    List.fold_left
      (fun acc s ->
        match s.Metrics.value with
        | Metrics.Vcounter v when s.Metrics.name = "flippy_total" -> acc +. v
        | _ -> acc)
      0.0 (Metrics.snapshot r)
  in
  (* Hammer until an increment provably lands: with a fixed-length loop
     the flipper can sit descheduled right after an [uninstall], letting
     every record run against the empty slot. *)
  let attempts = ref 0 in
  while recorded () = 0.0 && !attempts < 200 do
    incr attempts;
    for _ = 1 to 50_000 do
      Metrics.record (fun reg -> Metrics.incr reg "flippy_total")
    done
  done;
  Atomic.set stop true;
  Domain.join flipper;
  Metrics.uninstall ();
  Alcotest.(check bool) "no crash, some increments landed" true (recorded () > 0.0)

(* --- JSON codec ---------------------------------------------------------- *)

let test_json_round_trip () =
  let tricky =
    Json.Obj
      [
        ("s", Json.Str "a\"b\\c\nd\te\x01f");
        ("i", Json.Int (-42));
        ("f", Json.Float 0.1);
        ("tiny", Json.Float 1.2345678901234567e-300);
        ("neg", Json.Float (-0.0));
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Float 2.5; Json.Str "" ]);
        ("o", Json.Obj [ ("nested", Json.List []) ]);
      ]
  in
  match Json.of_string (Json.to_string tricky) with
  | Ok parsed ->
    Alcotest.(check bool) "structural equality" true (parsed = tricky)
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let test_json_rejects_garbage () =
  List.iter
    (fun text ->
      match Json.of_string text with
      | Ok _ -> Alcotest.failf "accepted %S" text
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2" ]

let json_float_round_trip =
  Helpers.qtest ~count:300 "every float survives JSON text"
    QCheck2.Gen.(float_bound_inclusive 1e9)
    string_of_float
    (fun f ->
      match Json.of_string (Json.to_string (Json.Float f)) with
      | Ok (Json.Float f') -> Int64.bits_of_float f' = Int64.bits_of_float f
      | _ -> false)

(* --- JSONL round-trips --------------------------------------------------- *)

let traced_fig1 () =
  let instance = Workload.fig1 () in
  let mediator = Mediator.create_exn (Array.to_list instance.Workload.sources) in
  let collector = Trace.create () in
  let report =
    Helpers.check_ok
      (Mediator.run
         ~config:
           { Mediator.Config.default with Mediator.Config.trace = Some collector }
         mediator instance.Workload.query)
  in
  (collector, report)

let test_jsonl_round_trip () =
  let collector, report = traced_fig1 () in
  let registry = Metrics.create () in
  Metrics.incr registry ~labels:[ ("source", "R1") ] "fusion_requests_total" ~by:4.0;
  Metrics.observe registry "fusion_answer_size" (Fusion_data.Item_set.cardinal report.Mediator.answer);
  let metrics = Metrics.snapshot registry in
  let spans = Trace.spans collector in
  Alcotest.(check bool) "trace is non-trivial" true (List.length spans > 3);
  let text = Jsonl.export ~metrics spans in
  let spans', samples' = Helpers.check_ok (Jsonl.parse text) in
  Alcotest.(check bool) "spans round-trip exactly" true (spans' = spans);
  Alcotest.(check int) "samples survive" (List.length metrics) (List.length samples');
  (* Re-exporting the parsed lines reproduces the file byte-for-byte. *)
  Alcotest.(check string) "re-export is identical" text (Jsonl.export ~metrics:samples' spans')

let test_jsonl_rejects_unknown () =
  (match Jsonl.parse "{\"type\":\"widget\"}" with
  | Ok _ -> Alcotest.fail "accepted unknown line type"
  | Error _ -> ());
  match Jsonl.parse "not json at all" with
  | Ok _ -> Alcotest.fail "accepted garbage"
  | Error _ -> ()

(* --- end-to-end acceptance ----------------------------------------------- *)

(* The sum of the source-request spans' costs is the run's actual cost:
   every meter charge happens inside exactly one [Request] span. *)
let test_request_spans_reproduce_actual_cost () =
  let collector, report = traced_fig1 () in
  let requests =
    List.filter (fun s -> s.Trace.kind = Trace.Request) report.Mediator.trace
  in
  Alcotest.(check bool) "has request spans" true (requests <> []);
  let by_charge = List.fold_left (fun acc s -> acc +. Trace.cost s) 0.0 requests in
  let by_attr =
    List.fold_left
      (fun acc s ->
        match Trace.find_attr s "cost" with
        | Some (Trace.Float c) -> acc +. c
        | _ -> Alcotest.failf "request span %s lacks a cost attr" s.Trace.name)
      0.0 requests
  in
  Alcotest.(check (float 1e-6)) "charges sum to actual cost"
    report.Mediator.actual_cost by_charge;
  Alcotest.(check (float 1e-6)) "cost attrs sum to actual cost"
    report.Mediator.actual_cost by_attr;
  ignore collector

(* Per source, the request spans' "requests" attributes add up to what
   that source's meter counted — including emulated semijoins, where one
   span covers many metered lookups. *)
let test_request_spans_match_meters () =
  let _, report = traced_fig1 () in
  let span_requests name =
    List.fold_left
      (fun acc s ->
        match Trace.find_attr s "source", Trace.find_attr s "requests" with
        | Some (Trace.Str n), Some (Trace.Int r) when n = name -> acc + r
        | _ -> acc)
      0 report.Mediator.trace
  in
  Alcotest.(check bool) "several sources" true (List.length report.Mediator.per_source >= 2);
  List.iter
    (fun (name, totals) ->
      Alcotest.(check int)
        (Printf.sprintf "span requests match meter for %s" name)
        totals.Fusion_net.Meter.requests (span_requests name))
    report.Mediator.per_source

let test_trace_shape () =
  let _, report = traced_fig1 () in
  match Trace.roots report.Mediator.trace with
  | [ root ] ->
    Alcotest.(check bool) "root is the run span" true
      (root.Trace.kind = Trace.Run && root.Trace.name = "mediator.run");
    let kids = Trace.children report.Mediator.trace root.Trace.id in
    Alcotest.(check bool) "optimizer span under the run" true
      (List.exists (fun s -> s.Trace.kind = Trace.Optimize) kids);
    Alcotest.(check bool) "step spans under the run" true
      (List.exists (fun s -> s.Trace.kind = Trace.Step) kids)
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots)

(* Tracing must not perturb the computation: the reports of an untraced
   and a traced run agree on everything but the trace itself. *)
let test_tracing_is_zero_overhead () =
  let run traced =
    let instance = Workload.fig1 () in
    let mediator = Mediator.create_exn (Array.to_list instance.Workload.sources) in
    let trace = if traced then Some (Trace.create ()) else None in
    Helpers.check_ok (Mediator.run
      ~config:{ Mediator.Config.default with Mediator.Config.trace }
      mediator instance.Workload.query)
  in
  let off = run false and on = run true in
  Alcotest.(check bool) "no trace when off" true (off.Mediator.trace = []);
  Alcotest.(check bool) "trace when on" true (on.Mediator.trace <> []);
  Alcotest.check Helpers.item_set "same answer" off.Mediator.answer on.Mediator.answer;
  Alcotest.(check (float 1e-9)) "same actual cost" off.Mediator.actual_cost
    on.Mediator.actual_cost;
  Alcotest.(check (float 1e-9)) "same estimated cost"
    off.Mediator.optimized.Optimized.est_cost on.Mediator.optimized.Optimized.est_cost;
  Alcotest.(check bool) "same steps" true (off.Mediator.steps = on.Mediator.steps);
  Alcotest.(check bool) "same per-source meters" true
    (off.Mediator.per_source = on.Mediator.per_source);
  Alcotest.(check int) "same failures" off.Mediator.failures on.Mediator.failures;
  Alcotest.(check bool) "same partial flag" off.Mediator.partial on.Mediator.partial

let test_cache_hit_miss_attrs () =
  let instance = Workload.fig1 () in
  let mediator = Mediator.create_exn (Array.to_list instance.Workload.sources) in
  let cache = Fusion_plan.Exec.Query_cache.create () in
  let collector = Trace.create () in
  (* Filter always issues sq/sjq (the cacheable ops); SJA+ may post-opt
     the whole plan into loads, which never consult the cache. *)
  let run () =
    Helpers.check_ok
      (Mediator.run
         ~config:
           {
             Mediator.Config.default with
             Mediator.Config.algo = Optimizer.Filter;
             cache = Some cache;
             trace = Some collector;
           }
         mediator
         instance.Workload.query)
  in
  let first = run () and second = run () in
  let outcome report =
    List.fold_left
      (fun (hits, misses) s ->
        match Trace.find_attr s "cache" with
        | Some (Trace.Str "hit") -> (hits + 1, misses)
        | Some (Trace.Str "miss") -> (hits, misses + 1)
        | _ -> (hits, misses))
      (0, 0) report.Mediator.trace
  in
  let h1, m1 = outcome first and h2, m2 = outcome second in
  Alcotest.(check int) "first run never hits" 0 h1;
  Alcotest.(check bool) "first run misses" true (m1 > 0);
  Alcotest.(check bool) "second run hits" true (h2 > 0);
  Alcotest.(check int) "second run never misses" 0 m2

let test_run_metrics () =
  let instance = Workload.fig1 () in
  let mediator = Mediator.create_exn (Array.to_list instance.Workload.sources) in
  let registry = Metrics.create () in
  let report =
    Metrics.with_registry registry (fun () ->
        Helpers.check_ok (Mediator.run mediator instance.Workload.query))
  in
  let meter_requests =
    List.fold_left
      (fun acc (_, t) -> acc + t.Fusion_net.Meter.requests)
      0 report.Mediator.per_source
  in
  let counter name =
    List.fold_left
      (fun acc s ->
        match s.Metrics.value with
        | Metrics.Vcounter v when s.Metrics.name = name -> acc +. v
        | _ -> acc)
      0.0 (Metrics.snapshot registry)
  in
  Alcotest.(check (float 1e-9)) "request counter matches meters"
    (float_of_int meter_requests)
    (counter "fusion_requests_total");
  Alcotest.(check (float 1e-6)) "cost counter matches actual cost"
    report.Mediator.actual_cost
    (counter "fusion_request_cost_total");
  Alcotest.(check (float 1e-9)) "one run recorded" 1.0 (counter "fusion_runs_total")

let suite =
  [
    Alcotest.test_case "disabled tracing is a no-op" `Quick test_trace_disabled_is_noop;
    Alcotest.test_case "span nesting, attrs and charges" `Quick test_trace_nesting_and_attrs;
    Alcotest.test_case "spans finish on exceptions" `Quick test_trace_finishes_on_exception;
    Alcotest.test_case "mark brackets a region" `Quick test_trace_mark_brackets;
    Alcotest.test_case "kind strings round-trip" `Quick test_kind_strings;
    Alcotest.test_case "backwards wall clock" `Quick test_trace_backwards_clock;
    Alcotest.test_case "summary on real-clock latencies" `Quick
      test_summary_real_clock_latencies;
    Alcotest.test_case "metrics series" `Quick test_metrics_series;
    Alcotest.test_case "metrics record when off" `Quick test_metrics_record_when_off;
    Alcotest.test_case "metrics domain hammer" `Quick test_metrics_domain_hammer;
    Alcotest.test_case "metrics install race" `Quick test_metrics_install_race;
    Alcotest.test_case "json round trip" `Quick test_json_round_trip;
    Alcotest.test_case "json rejects garbage" `Quick test_json_rejects_garbage;
    json_float_round_trip;
    Alcotest.test_case "jsonl round trip" `Quick test_jsonl_round_trip;
    Alcotest.test_case "jsonl rejects unknown lines" `Quick test_jsonl_rejects_unknown;
    Alcotest.test_case "request spans reproduce actual cost" `Quick
      test_request_spans_reproduce_actual_cost;
    Alcotest.test_case "request spans match meters" `Quick test_request_spans_match_meters;
    Alcotest.test_case "trace shape" `Quick test_trace_shape;
    Alcotest.test_case "tracing is zero overhead" `Quick test_tracing_is_zero_overhead;
    Alcotest.test_case "cache hit and miss attrs" `Quick test_cache_hit_miss_attrs;
    Alcotest.test_case "run metrics" `Quick test_run_metrics;
  ]
