(* The sliding-window aggregator. Two pins: a window still holding all
   its samples snapshots to exactly [Summary.percentiles_of] over the
   same values (the agreement {!Fusion_obs.Window} promises by
   construction — checked as a property anyway so a reimplementation
   cannot silently diverge), and the (now - span, now] eviction
   boundary under a manual clock — a sample falls out at the first
   instant [now -. span] reaches its timestamp, not one tick later. *)

module Window = Fusion_obs.Window
module Summary = Fusion_obs.Summary

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let peq (a : Summary.percentiles) (b : Summary.percentiles) =
  a.Summary.p50 = b.Summary.p50
  && a.Summary.p90 = b.Summary.p90
  && a.Summary.p99 = b.Summary.p99
  && a.Summary.mean = b.Summary.mean
  && a.Summary.max = b.Summary.max
  && a.Summary.n = b.Summary.n

let prop_full_window_matches_summary =
  Helpers.qtest ~count:300 "full window snapshot = summary percentiles"
    QCheck2.Gen.(list_size (int_range 0 40) (float_bound_inclusive 250.0))
    (fun vs ->
      Printf.sprintf "[%s]" (String.concat "; " (List.map string_of_float vs)))
    (fun vs ->
      (* Samples 10ms apart against a 1000s span: nothing evicts, so
         the window sees exactly [vs]. *)
      let w = Window.create ~span:1000.0 () in
      List.iteri (fun i v -> Window.add w ~now:(float_of_int i *. 0.01) v) vs;
      let now = float_of_int (List.length vs) *. 0.01 in
      peq (Window.snapshot w ~now) (Summary.percentiles_of ~buckets:128 vs))

let test_eviction_boundary () =
  let w = Window.create ~span:10.0 () in
  check_int "empty window" 0 (Window.length w ~now:0.0);
  check_bool "empty snapshot is the empty percentiles" true
    (Window.snapshot w ~now:0.0 = Summary.empty_percentiles);
  Window.add w ~now:0.0 1.0;
  Window.add w ~now:5.0 2.0;
  check_int "both inside just before the boundary" 2 (Window.length w ~now:9.99);
  check_int "first sample out exactly at ts + span" 1 (Window.length w ~now:10.0);
  Alcotest.(check (list (float 0.0)))
    "the younger sample survives" [ 2.0 ] (Window.values w ~now:10.0);
  check_int "window drains completely" 0 (Window.length w ~now:15.0);
  check_int "high water remembers the peak" 2 (Window.high_water w)

let test_snapshot_evicts_too () =
  let w = Window.create ~span:10.0 () in
  Window.add w ~now:0.0 100.0;
  Window.add w ~now:8.0 1.0;
  check_int "both counted while young" 2 (Window.snapshot w ~now:8.0).Summary.n;
  let late = Window.snapshot w ~now:10.0 in
  check_int "snapshot itself evicts" 1 late.Summary.n;
  Alcotest.(check (float 0.0)) "the old outlier is gone" 1.0 late.Summary.max

let test_insertion_order_values () =
  let w = Window.create ~span:100.0 () in
  List.iteri (fun i v -> Window.add w ~now:(float_of_int i) v) [ 3.0; 1.0; 2.0 ];
  Alcotest.(check (list (float 0.0)))
    "values keep insertion order" [ 3.0; 1.0; 2.0 ] (Window.values w ~now:2.0)

let test_clear () =
  let w = Window.create ~span:5.0 () in
  Window.add w ~now:0.0 1.0;
  Window.clear w;
  check_int "cleared" 0 (Window.length w ~now:0.0);
  check_int "high water reset" 0 (Window.high_water w)

let test_create_validation () =
  let raises f =
    match f () with _ -> false | exception Invalid_argument _ -> true
  in
  check_bool "zero span rejected" true (raises (fun () -> Window.create ~span:0.0 ()));
  check_bool "negative span rejected" true
    (raises (fun () -> Window.create ~span:(-1.0) ()));
  check_bool "nan span rejected" true
    (raises (fun () -> Window.create ~span:Float.nan ()));
  check_bool "zero buckets rejected" true
    (raises (fun () -> Window.create ~buckets:0 ~span:1.0 ()))

let suite =
  [
    prop_full_window_matches_summary;
    Alcotest.test_case "eviction boundary" `Quick test_eviction_boundary;
    Alcotest.test_case "snapshot evicts" `Quick test_snapshot_evicts_too;
    Alcotest.test_case "values keep insertion order" `Quick
      test_insertion_order_values;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "create validation" `Quick test_create_validation;
  ]
