(* Schema, Tuple, Item_set, Relation and CSV round-trips. *)

open Fusion_data

let test_schema_create () =
  let schema = Helpers.abc_schema in
  Alcotest.(check string) "merge" "M" (Schema.merge schema);
  Alcotest.(check int) "merge pos" 0 (Schema.merge_pos schema);
  Alcotest.(check int) "arity" 3 (Schema.arity schema);
  Alcotest.(check (option int)) "pos A" (Some 1) (Schema.pos schema "A");
  Alcotest.(check (option int)) "pos unknown" None (Schema.pos schema "Z");
  Alcotest.(check bool) "mem" true (Schema.mem schema "B")

let test_schema_errors () =
  ignore
    (Helpers.check_err "missing merge"
       (Schema.create ~merge:"X" [ ("M", Value.Tstring) ]));
  ignore
    (Helpers.check_err "duplicate"
       (Schema.create ~merge:"M" [ ("M", Value.Tstring); ("M", Value.Tint) ]))

let test_schema_equal () =
  let s1 = Schema.create_exn ~merge:"M" [ ("M", Value.Tstring); ("A", Value.Tint) ] in
  let s2 = Schema.create_exn ~merge:"M" [ ("M", Value.Tstring); ("A", Value.Tint) ] in
  let s3 = Schema.create_exn ~merge:"M" [ ("M", Value.Tstring); ("A", Value.Tfloat) ] in
  Alcotest.(check bool) "equal" true (Schema.equal s1 s2);
  Alcotest.(check bool) "not equal" false (Schema.equal s1 s3)

let test_tuple_create () =
  let t = Tuple.create_exn Helpers.abc_schema (Helpers.abc_row "k1" 5 "x") in
  Alcotest.check Helpers.value "get 0" (String "k1") (Tuple.get t 0);
  Alcotest.check Helpers.value "by attr" (Int 5) (Tuple.get_attr Helpers.abc_schema t "A");
  Alcotest.check Helpers.value "item" (String "k1") (Tuple.item Helpers.abc_schema t)

let test_tuple_type_errors () =
  ignore
    (Helpers.check_err "arity"
       (Tuple.create Helpers.abc_schema [ Value.String "k" ]));
  ignore
    (Helpers.check_err "type"
       (Tuple.create Helpers.abc_schema
          [ Value.String "k"; Value.String "not an int"; Value.String "b" ]));
  (* Nulls are allowed in any position. *)
  ignore
    (Helpers.check_ok
       (Tuple.create Helpers.abc_schema [ Value.String "k"; Value.Null; Value.Null ]))

let test_item_set_ops () =
  let s1 = Helpers.items_of_strings [ "a"; "b"; "c" ] in
  let s2 = Helpers.items_of_strings [ "b"; "c"; "d" ] in
  Alcotest.check Helpers.item_set "union"
    (Helpers.items_of_strings [ "a"; "b"; "c"; "d" ])
    (Item_set.union s1 s2);
  Alcotest.check Helpers.item_set "inter"
    (Helpers.items_of_strings [ "b"; "c" ])
    (Item_set.inter s1 s2);
  Alcotest.check Helpers.item_set "diff"
    (Helpers.items_of_strings [ "a" ])
    (Item_set.diff s1 s2);
  Alcotest.(check int) "cardinal" 3 (Item_set.cardinal s1);
  Alcotest.check Helpers.item_set "inter_list empty" Item_set.empty (Item_set.inter_list []);
  Alcotest.check Helpers.item_set "union_list"
    (Helpers.items_of_strings [ "a"; "b"; "c"; "d" ])
    (Item_set.union_list [ s1; s2; Item_set.empty ])

let test_relation_basics () =
  let r =
    Helpers.abc_relation
      [
        Helpers.abc_row "k1" 1 "x";
        Helpers.abc_row "k2" 2 "y";
        Helpers.abc_row "k1" 3 "z";
      ]
  in
  Alcotest.(check int) "cardinality" 3 (Relation.cardinality r);
  Alcotest.(check int) "distinct items" 2 (Relation.distinct_item_count r);
  Alcotest.check Helpers.item_set "items"
    (Helpers.items_of_strings [ "k1"; "k2" ])
    (Relation.items r);
  Alcotest.(check int) "tuples of k1" 2
    (List.length (Relation.tuples_of_item r (String "k1")));
  Alcotest.(check int) "tuples of missing" 0
    (List.length (Relation.tuples_of_item r (String "zz")))

let test_tuples_of_item_insertion_order () =
  (* The probe index stores positions newest-first internally;
     tuples_of_item must still present tuples in insertion order. *)
  let r =
    Helpers.abc_relation
      [
        Helpers.abc_row "k1" 1 "first";
        Helpers.abc_row "k2" 2 "other";
        Helpers.abc_row "k1" 3 "second";
        Helpers.abc_row "k1" 5 "third";
      ]
  in
  let bs =
    Relation.tuples_of_item r (String "k1")
    |> List.map (fun tuple -> Tuple.get_attr Helpers.abc_schema tuple "B")
  in
  Alcotest.(check (list string))
    "insertion order"
    [ "first"; "second"; "third" ]
    (List.map
       (function Value.String s -> s | v -> Value.to_string v)
       bs)

let test_inter_list_short_circuit () =
  let s1 = Helpers.items_of_strings [ "a"; "b"; "c" ] in
  let s2 = Helpers.items_of_strings [ "b"; "c"; "d" ] in
  let before = Item_set.Debug.kernel_calls () in
  Alcotest.check Helpers.item_set "empty operand wins" Item_set.empty
    (Item_set.inter_list [ s1; Item_set.empty; s2 ]);
  Alcotest.(check int)
    "no kernel ran" before
    (Item_set.Debug.kernel_calls ());
  (* Disjoint small sets: the smallest-first fold stops as soon as the
     running intersection goes empty. *)
  let s3 = Helpers.items_of_strings [ "x" ] in
  let before = Item_set.Debug.kernel_calls () in
  Alcotest.check Helpers.item_set "disjoint" Item_set.empty
    (Item_set.inter_list [ s1; s2; s3 ]);
  Alcotest.(check int)
    "one kernel, then short-circuit" (before + 1)
    (Item_set.Debug.kernel_calls ())

let test_union_list_size_aware () =
  let sets =
    [
      Helpers.items_of_strings [ "a"; "b"; "c"; "d"; "e" ];
      Item_set.empty;
      Helpers.items_of_strings [ "b" ];
      Helpers.items_of_strings [ "c"; "f" ];
    ]
  in
  Alcotest.check Helpers.item_set "union_list order-independent"
    (Helpers.items_of_strings [ "a"; "b"; "c"; "d"; "e"; "f" ])
    (Item_set.union_list sets);
  Alcotest.check Helpers.item_set "reversed input, same result"
    (Item_set.union_list sets)
    (Item_set.union_list (List.rev sets));
  Alcotest.check Helpers.item_set "inter_list smallest-first"
    (Helpers.items_of_strings [ "b" ])
    (Item_set.inter_list
       [
         Helpers.items_of_strings [ "a"; "b"; "c"; "d" ];
         Helpers.items_of_strings [ "b"; "c" ];
         Helpers.items_of_strings [ "b"; "d" ];
       ])

let test_relation_select_semijoin () =
  let r =
    Helpers.abc_relation
      [
        Helpers.abc_row "k1" 1 "x";
        Helpers.abc_row "k2" 5 "y";
        Helpers.abc_row "k3" 9 "x";
        Helpers.abc_row "k1" 7 "y";
      ]
  in
  let p tuple = Tuple.get_attr Helpers.abc_schema tuple "A" = Value.Int 1 in
  Alcotest.check Helpers.item_set "select" (Helpers.items_of_strings [ "k1" ])
    (Relation.select_items r p);
  let big tuple =
    match Tuple.get_attr Helpers.abc_schema tuple "A" with
    | Value.Int a -> a >= 5
    | _ -> false
  in
  (* k1 qualifies through its second tuple (A=7). *)
  Alcotest.check Helpers.item_set "semijoin"
    (Helpers.items_of_strings [ "k1"; "k2" ])
    (Relation.semijoin_items r big (Helpers.items_of_strings [ "k1"; "k2"; "zz" ]));
  Alcotest.(check int) "count_matching distinct" 3 (Relation.count_matching r big)

let test_relation_semijoin_vs_naive =
  Helpers.qtest ~count:100 "semijoin_items agrees with select∩probe"
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 40)
           (triple (int_range 0 9) (int_range 0 9) (string_size (int_range 1 2))))
        (list_size (int_range 0 10) (int_range 0 9)))
    (fun (rows, probe) ->
      Printf.sprintf "%d rows, %d probes" (List.length rows) (List.length probe))
    (fun (rows, probe) ->
      let r =
        Helpers.abc_relation
          (List.map (fun (k, a, b) -> Helpers.abc_row (Printf.sprintf "k%d" k) a b) rows)
      in
      let probe_set =
        Item_set.of_list (List.map (fun k -> Value.String (Printf.sprintf "k%d" k)) probe)
      in
      let p tuple =
        match Tuple.get_attr Helpers.abc_schema tuple "A" with
        | Value.Int a -> a < 5
        | _ -> false
      in
      Item_set.equal
        (Relation.semijoin_items r p probe_set)
        (Item_set.inter (Relation.select_items r p) probe_set))

let test_csv_round_trip () =
  let r =
    Helpers.abc_relation
      [ Helpers.abc_row "k1" 1 "x"; Helpers.abc_row "k2" 2 "hello world" ]
  in
  let text = Csv_io.write_string r in
  let r' = Helpers.check_ok (Csv_io.read_string ~name:"R" text) in
  Alcotest.(check bool) "schema survives" true
    (Schema.equal (Relation.schema r) (Relation.schema r'));
  Alcotest.(check int) "cardinality" (Relation.cardinality r) (Relation.cardinality r');
  Alcotest.check Helpers.item_set "items" (Relation.items r) (Relation.items r')

let test_csv_errors () =
  ignore (Helpers.check_err "empty" (Csv_io.read_string ~name:"R" ""));
  ignore
    (Helpers.check_err "no merge" (Csv_io.read_string ~name:"R" "a:int,b:int\n1,2\n"));
  ignore
    (Helpers.check_err "bad type" (Csv_io.read_string ~name:"R" "*a:blob\nx\n"));
  ignore
    (Helpers.check_err "bad row" (Csv_io.read_string ~name:"R" "*a:int,b:int\n1\n"))

let test_csv_null_round_trip () =
  let r =
    Helpers.abc_relation [ [ Value.String "k"; Value.Null; Value.String "b" ] ]
  in
  let r' = Helpers.check_ok (Csv_io.read_string ~name:"R" (Csv_io.write_string r)) in
  match Relation.tuples r' with
  | [ t ] -> Alcotest.check Helpers.value "null survives" Value.Null (Tuple.get t 1)
  | _ -> Alcotest.fail "expected one tuple"

(* Strings that defeat naive comma-splitting: separators, quotes,
   whitespace, and the unquoted spellings of null. Each must survive a
   write/read cycle byte-for-byte. *)
let test_csv_quoting_round_trip () =
  let tricky =
    [
      "plain";
      "has,comma";
      "has \"quotes\"";
      "both, \"of\" them";
      "  leading and trailing  ";
      "";
      "NULL";
      "\"";
      ",";
    ]
  in
  let r =
    Helpers.abc_relation
      (List.mapi (fun i s -> Helpers.abc_row (Printf.sprintf "k%d" i) i s) tricky)
  in
  let text = Csv_io.write_string r in
  let r' = Helpers.check_ok (Csv_io.read_string ~name:"R" text) in
  Alcotest.(check int) "cardinality" (List.length tricky) (Relation.cardinality r');
  List.iteri
    (fun i s ->
      match Relation.tuples_of_item r' (String (Printf.sprintf "k%d" i)) with
      | [ t ] ->
        Alcotest.check Helpers.value
          (Printf.sprintf "field %d survives" i)
          (Value.String s) (Tuple.get t 2)
      | _ -> Alcotest.fail "expected one tuple per item")
    tricky

(* Quoted "" and "NULL" are literal strings; unquoted they are nulls. *)
let test_csv_quoted_vs_null () =
  let text = "*m:string,s:string\nk1,\"\"\nk2,\nk3,\"NULL\"\nk4,NULL\n" in
  let r = Helpers.check_ok (Csv_io.read_string ~name:"R" text) in
  let field k =
    match Relation.tuples_of_item r (String k) with
    | [ t ] -> Tuple.get t 1
    | _ -> Alcotest.fail "expected one tuple"
  in
  Alcotest.check Helpers.value "quoted empty" (Value.String "") (field "k1");
  Alcotest.check Helpers.value "bare empty" Value.Null (field "k2");
  Alcotest.check Helpers.value "quoted NULL" (Value.String "NULL") (field "k3");
  Alcotest.check Helpers.value "bare NULL" Value.Null (field "k4")

(* Random strings over a hostile alphabet round-trip through CSV. *)
let csv_string_round_trip =
  let field_gen =
    QCheck2.Gen.(string_size ~gen:(oneofl [ 'a'; ','; '"'; ' '; 'N' ]) (int_range 0 8))
  in
  Helpers.qtest ~count:200 "csv string fields round-trip"
    QCheck2.Gen.(list_size (int_range 1 10) field_gen)
    (fun fields -> String.concat "|" (List.map String.escaped fields))
    (fun fields ->
      let r =
        Helpers.abc_relation
          (List.mapi (fun i s -> Helpers.abc_row (Printf.sprintf "k%d" i) i s) fields)
      in
      match Csv_io.read_string ~name:"R" (Csv_io.write_string r) with
      | Error _ -> false
      | Ok r' ->
        List.for_all
          (fun i ->
            match Relation.tuples_of_item r' (String (Printf.sprintf "k%d" i)) with
            | [ t ] -> Tuple.get t 2 = Value.String (List.nth fields i)
            | _ -> false)
          (List.init (List.length fields) Fun.id))

let item_set_algebra =
  let gen = QCheck2.Gen.(list_size (int_range 0 12) (int_range 0 8)) in
  let to_set l = Item_set.of_list (List.map (fun i -> Value.Int i) l) in
  Helpers.qtest ~count:200 "item-set algebra laws"
    QCheck2.Gen.(triple gen gen gen)
    (fun _ -> "sets")
    (fun (a, b, c) ->
      let a = to_set a and b = to_set b and c = to_set c in
      Item_set.equal (Item_set.union a b) (Item_set.union b a)
      && Item_set.equal (Item_set.inter a (Item_set.union b c))
           (Item_set.union (Item_set.inter a b) (Item_set.inter a c))
      && Item_set.equal (Item_set.diff a (Item_set.union b c))
           (Item_set.inter (Item_set.diff a b) (Item_set.diff a c))
      && Item_set.subset (Item_set.inter a b) a)

let suite =
  [
    Alcotest.test_case "schema creation" `Quick test_schema_create;
    Alcotest.test_case "schema errors" `Quick test_schema_errors;
    Alcotest.test_case "schema equality" `Quick test_schema_equal;
    Alcotest.test_case "tuple creation and access" `Quick test_tuple_create;
    Alcotest.test_case "tuple typing errors" `Quick test_tuple_type_errors;
    Alcotest.test_case "item-set operations" `Quick test_item_set_ops;
    Alcotest.test_case "inter_list short-circuits on empty" `Quick
      test_inter_list_short_circuit;
    Alcotest.test_case "union/inter folds are size-aware" `Quick test_union_list_size_aware;
    Alcotest.test_case "relation basics and index" `Quick test_relation_basics;
    Alcotest.test_case "tuples_of_item in insertion order" `Quick
      test_tuples_of_item_insertion_order;
    Alcotest.test_case "relation select and semijoin" `Quick test_relation_select_semijoin;
    test_relation_semijoin_vs_naive;
    Alcotest.test_case "csv round trip" `Quick test_csv_round_trip;
    Alcotest.test_case "csv errors" `Quick test_csv_errors;
    Alcotest.test_case "csv null round trip" `Quick test_csv_null_round_trip;
    Alcotest.test_case "csv quoting round trip" `Quick test_csv_quoting_round_trip;
    Alcotest.test_case "csv quoted vs null" `Quick test_csv_quoted_vs_null;
    csv_string_round_trip;
    item_set_algebra;
  ]
