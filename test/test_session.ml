(* Query cache, Explain, Axioms, Catalog — the session-level features. *)

open Fusion_data
open Fusion_core
open Fusion_plan
module Workload = Fusion_workload.Workload
module Mediator = Fusion_mediator.Mediator
module Cache = Exec.Query_cache

let dmv_sql =
  "SELECT u1.L FROM U u1, U u2 WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'"

let test_cache_second_run_free () =
  let instance = Workload.fig1 () in
  let mediator = Mediator.create_exn (Array.to_list instance.Workload.sources) in
  let cache = Cache.create () in
  let first = Helpers.check_ok (Mediator.run_sql
      ~config:
        {
          Mediator.Config.default with
          Mediator.Config.algo = Optimizer.Filter;
          cache = Some cache;
        }
      mediator dmv_sql) in
  let second = Helpers.check_ok (Mediator.run_sql
      ~config:
        {
          Mediator.Config.default with
          Mediator.Config.algo = Optimizer.Filter;
          cache = Some cache;
        }
      mediator dmv_sql) in
  Alcotest.check Helpers.item_set "same answer" first.Mediator.answer second.Mediator.answer;
  Alcotest.(check (float 0.001)) "second run free" 0.0 second.Mediator.actual_cost;
  let stats = Cache.stats cache in
  Alcotest.(check int) "6 misses (2 conds × 3 sources)" 6 stats.Cache.misses;
  Alcotest.(check int) "6 hits on replay" 6 stats.Cache.hits;
  Alcotest.(check (float 0.001)) "saved = first run's cost" first.Mediator.actual_cost
    stats.Cache.saved_cost

let test_cache_shared_condition_across_queries () =
  let instance = Workload.fig1 () in
  let mediator = Mediator.create_exn (Array.to_list instance.Workload.sources) in
  let cache = Cache.create () in
  ignore (Helpers.check_ok (Mediator.run_sql
      ~config:
        {
          Mediator.Config.default with
          Mediator.Config.algo = Optimizer.Filter;
          cache = Some cache;
        }
      mediator dmv_sql));
  (* A different query sharing the dui condition. *)
  let other = "SELECT u1.L FROM U u1, U u2 WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.D < 1995" in
  let report = Helpers.check_ok (Mediator.run_sql
      ~config:
        {
          Mediator.Config.default with
          Mediator.Config.algo = Optimizer.Filter;
          cache = Some cache;
        }
      mediator other) in
  let stats = Cache.stats cache in
  Alcotest.(check int) "dui answers reused at 3 sources" 3 stats.Cache.hits;
  (* Answer must match an uncached run. *)
  let fresh = Helpers.check_ok (Mediator.run_sql
      ~config:{ Mediator.Config.default with Mediator.Config.algo = Optimizer.Filter }
      mediator other) in
  Alcotest.check Helpers.item_set "cached = fresh" fresh.Mediator.answer report.Mediator.answer

let test_cache_serves_semijoins () =
  let instance = Workload.fig1 () in
  let sources = instance.Workload.sources in
  let conds = Fusion_query.Query.conditions instance.Workload.query in
  let cache = Cache.create () in
  (* Warm the cache with a selection, then run a semijoin on the same
     (condition, source): it must execute locally at zero cost. *)
  let warm =
    Plan.create ~ops:[ Op.Select { dst = "X"; cond = 1; source = 0 } ] ~output:"X"
  in
  ignore (Exec.run ~cache ~sources ~conds warm);
  let probe_plan =
    Plan.create
      ~ops:
        [
          Op.Select { dst = "Y"; cond = 0; source = 1 };
          Op.Semijoin { dst = "Z"; cond = 1; source = 0; input = "Y" };
        ]
      ~output:"Z"
  in
  let result = Exec.run ~cache ~sources ~conds probe_plan in
  let semijoin_step =
    List.find (fun s -> match s.Exec.op with Op.Semijoin _ -> true | _ -> false)
      result.Exec.steps
  in
  Alcotest.(check (float 0.001)) "semijoin free" 0.0 semijoin_step.Exec.cost;
  (* Same answer as uncached execution. *)
  let uncached = Exec.run ~sources ~conds probe_plan in
  Alcotest.check Helpers.item_set "same answer" uncached.Exec.answer result.Exec.answer

let qcheck_cache_transparent =
  Helpers.qtest ~count:40 "cached sessions return uncached answers" Helpers.spec_gen
    Helpers.spec_print (fun spec ->
      let instance = Workload.generate spec in
      let mediator = Mediator.create_exn (Array.to_list instance.Workload.sources) in
      let cache = Cache.create () in
      let with_cache =
        Helpers.check_ok (Mediator.run
          ~config:
            {
              Mediator.Config.default with
              Mediator.Config.algo = Optimizer.Sja;
              cache = Some cache;
            }
          mediator instance.Workload.query)
      in
      let replay =
        Helpers.check_ok (Mediator.run
          ~config:
            {
              Mediator.Config.default with
              Mediator.Config.algo = Optimizer.Sja;
              cache = Some cache;
            }
          mediator instance.Workload.query)
      in
      let fresh = Helpers.check_ok (Mediator.run
          ~config:{ Mediator.Config.default with Mediator.Config.algo = Optimizer.Sja }
          mediator instance.Workload.query) in
      Item_set.equal with_cache.Mediator.answer fresh.Mediator.answer
      && Item_set.equal replay.Mediator.answer fresh.Mediator.answer
      && replay.Mediator.actual_cost <= with_cache.Mediator.actual_cost +. 1e-6)

(* --- Explain ----------------------------------------------------------- *)

let test_explain_alignment () =
  let instance = Workload.generate { Workload.default_spec with seed = 13 } in
  let env =
    Opt_env.create ~universe:instance.Workload.spec.Workload.universe
      instance.Workload.sources instance.Workload.query
  in
  let sja = Optimizer.optimize Optimizer.Sja env in
  let result = Helpers.execute_plan instance sja.Optimized.plan in
  let explain =
    Explain.analyze ~model:env.Opt_env.model ~est:env.Opt_env.est
      ~sources:env.Opt_env.sources ~conds:env.Opt_env.conds sja.Optimized.plan result
  in
  Alcotest.(check int) "one line per op" (List.length (Plan.ops sja.Optimized.plan))
    (List.length explain.Explain.lines);
  Alcotest.(check (float 0.001)) "actual total matches" result.Exec.total_cost
    explain.Explain.actual_total;
  Alcotest.(check (float 0.001)) "estimated total matches recurrence" sja.Optimized.est_cost
    explain.Explain.est_total;
  (* Exact statistics: estimated sq costs equal actual sq costs. *)
  List.iter
    (fun line ->
      match line.Explain.op with
      | Op.Select _ ->
        Alcotest.(check (float 0.001)) "sq est = actual" line.Explain.actual_cost
          line.Explain.est_cost
      | _ -> ())
    explain.Explain.lines;
  (* It renders. *)
  let text = Format.asprintf "%a" (Explain.pp ?source_name:None) explain in
  Alcotest.(check bool) "non-empty rendering" true (String.length text > 100)

let test_explain_rejects_mismatch () =
  let instance = Workload.fig1 () in
  let env = Opt_env.create instance.Workload.sources instance.Workload.query in
  let plan_a =
    Plan.create ~ops:[ Op.Select { dst = "X"; cond = 0; source = 0 } ] ~output:"X"
  in
  let plan_b =
    Plan.create
      ~ops:
        [
          Op.Select { dst = "X"; cond = 0; source = 0 };
          Op.Union { dst = "Y"; args = [ "X" ] };
        ]
      ~output:"Y"
  in
  let result = Helpers.execute_plan instance plan_a in
  Alcotest.(check bool) "length mismatch detected" true
    (match
       Explain.analyze ~model:env.Opt_env.model ~est:env.Opt_env.est
         ~sources:env.Opt_env.sources ~conds:env.Opt_env.conds plan_b result
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- Axioms ------------------------------------------------------------ *)

let test_internet_model_passes_axioms () =
  let instance = Workload.generate { Workload.default_spec with seed = 17 } in
  let env =
    Opt_env.create ~universe:instance.Workload.spec.Workload.universe
      instance.Workload.sources instance.Workload.query
  in
  Alcotest.(check int) "no violations" 0
    (List.length
       (Fusion_cost.Axioms.check env.Opt_env.model ~sources:env.Opt_env.sources
          ~conds:env.Opt_env.conds))

let test_axioms_catch_bad_model () =
  let instance = Workload.fig1 () in
  let env = Opt_env.create instance.Workload.sources instance.Workload.query in
  (* A model that rewards splitting semijoin sets: overhead is negative
     per item — superadditive and non-monotone. *)
  let bad =
    {
      Fusion_cost.Model.sq_cost = (fun _ _ -> 1.0);
      sjq_cost = (fun _ _ x -> x *. x);
      lq_cost = (fun _ -> -5.0);
    }
  in
  let violations =
    Fusion_cost.Axioms.check bad ~sources:env.Opt_env.sources ~conds:env.Opt_env.conds
  in
  Alcotest.(check bool) "violations found" true (List.length violations > 0);
  Alcotest.(check bool) "negative lq reported" true
    (List.exists
       (fun v ->
         String.length v.Fusion_cost.Axioms.description >= 2
         && String.sub v.Fusion_cost.Axioms.description 0 2 = "lq")
       violations)

(* --- Catalog ------------------------------------------------------------ *)

let write_demo_csv dir name =
  let relation =
    Helpers.abc_relation ~name [ Helpers.abc_row "k1" 1 "x"; Helpers.abc_row "k2" 2 "y" ]
  in
  Csv_io.write_file relation (Filename.concat dir (name ^ ".csv"))

let with_temp_dir f =
  let dir = Filename.temp_file "fusion_catalog" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun entry -> Sys.remove (Filename.concat dir entry)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let test_catalog_parse () =
  with_temp_dir (fun dir ->
      write_demo_csv dir "alpha";
      write_demo_csv dir "beta";
      let text =
        "# two sources\n\
         [source alpha]\n\
         file = alpha.csv\n\
         capability = no-semijoin\n\
         overhead = 100 # dial-up\n\
         \n\
         [source beta]\n\
         file = beta.csv\n\
         scale = 2.0\n"
      in
      let sources = Helpers.check_ok (Fusion_source.Catalog.parse ~dir text) in
      Alcotest.(check int) "two sources" 2 (List.length sources);
      let alpha = List.nth sources 0 in
      Alcotest.(check string) "name" "alpha" (Fusion_source.Source.name alpha);
      Alcotest.(check bool) "no native semijoin" false
        (Fusion_source.Source.capability alpha).Fusion_source.Capability.native_semijoin;
      Alcotest.(check (float 0.001)) "overhead" 100.0
        (Fusion_source.Source.profile alpha).Fusion_net.Profile.request_overhead;
      let beta = List.nth sources 1 in
      Alcotest.(check (float 0.001)) "scaled overhead"
        (2.0 *. Fusion_net.Profile.default.Fusion_net.Profile.request_overhead)
        (Fusion_source.Source.profile beta).Fusion_net.Profile.request_overhead)

let test_catalog_errors () =
  with_temp_dir (fun dir ->
      let err text = Helpers.check_err "catalog" (Fusion_source.Catalog.parse ~dir text) in
      ignore (err "");
      ignore (err "[source a]\ncapability = full\n");
      ignore (err "file = a.csv\n");
      ignore (err "[source a]\nfile = a.csv\nwhat = 3\n");
      ignore (err "[source a]\nfile = a.csv\ncapability = psychic\n");
      ignore (err "[source a]\nfile = missing.csv\n");
      ignore (err "[source a]\nfile = a.csv\noverhead = -3\n");
      write_demo_csv dir "a";
      ignore (err "[source a]\nfile = a.csv\n[source a]\nfile = a.csv\n"))

let suite =
  [
    Alcotest.test_case "cache: replay is free" `Quick test_cache_second_run_free;
    Alcotest.test_case "cache: shared condition across queries" `Quick
      test_cache_shared_condition_across_queries;
    Alcotest.test_case "cache: serves semijoins from selections" `Quick
      test_cache_serves_semijoins;
    qcheck_cache_transparent;
    Alcotest.test_case "explain: alignment and rendering" `Quick test_explain_alignment;
    Alcotest.test_case "explain: rejects mismatched execution" `Quick
      test_explain_rejects_mismatch;
    Alcotest.test_case "axioms: internet model passes" `Quick
      test_internet_model_passes_axioms;
    Alcotest.test_case "axioms: bad model caught" `Quick test_axioms_catch_bad_model;
    Alcotest.test_case "catalog: parse and build" `Quick test_catalog_parse;
    Alcotest.test_case "catalog: errors" `Quick test_catalog_errors;
  ]
