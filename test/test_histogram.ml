(* Equi-width histograms and the histogram statistics provider. *)

open Fusion_data
open Fusion_cond
module Histogram = Fusion_stats.Histogram
module Source_stats = Fusion_stats.Source_stats

let uniform_hist () =
  (* 100 values 0..99, one each, 10 buckets. *)
  Histogram.build ~buckets:10 ~lo:0 ~hi:99 ~values:(List.init 100 (fun v -> (v, 1)))

let test_total () =
  Alcotest.(check (float 0.001)) "total" 100.0 (Histogram.total (uniform_hist ()))

let test_estimate_le () =
  let h = uniform_hist () in
  Alcotest.(check (float 0.001)) "below lo" 0.0 (Histogram.estimate_le h 0);
  Alcotest.(check (float 0.001)) "above hi" 100.0 (Histogram.estimate_le h 200);
  Alcotest.(check (float 0.5)) "half" 50.0 (Histogram.estimate_le h 50);
  Alcotest.(check (float 0.5)) "quarter" 25.0 (Histogram.estimate_le h 25)

let test_estimate_range_and_eq () =
  let h = uniform_hist () in
  Alcotest.(check (float 0.5)) "range" 21.0 (Histogram.estimate_range h ~lo:10 ~hi:30);
  Alcotest.(check (float 0.001)) "empty range" 0.0 (Histogram.estimate_range h ~lo:30 ~hi:10);
  Alcotest.(check (float 0.2)) "point" 1.0 (Histogram.estimate_eq h 42)

let test_percentile_guards () =
  (* Empty and degenerate histograms used to leak [lo] (or worse, NaN
     via a NaN quantile) out of [percentile]; the option variant makes
     "no answer" explicit and the plain one documented and NaN-free. *)
  let empty = Histogram.of_counts ~lo:0 ~hi:99 ~counts:(Array.make 10 0.0) in
  Alcotest.(check (option (float 0.001))) "empty -> None" None
    (Histogram.percentile_opt empty 0.5);
  Alcotest.(check (float 0.001)) "empty fallback is lo" 0.0
    (Histogram.percentile empty 0.5);
  let h = uniform_hist () in
  Alcotest.(check (option (float 0.001))) "NaN quantile -> None" None
    (Histogram.percentile_opt h Float.nan);
  Alcotest.(check bool) "NaN quantile never yields NaN" false
    (Float.is_nan (Histogram.percentile h Float.nan));
  let degenerate = Histogram.of_counts ~lo:0 ~hi:9 ~counts:[| Float.infinity; 1.0 |] in
  Alcotest.(check (option (float 0.001))) "non-finite total -> None" None
    (Histogram.percentile_opt degenerate 0.5);
  Alcotest.(check bool) "populated histogram answers" true
    (Histogram.percentile_opt h 0.5 <> None);
  (* The two faces agree wherever the option answers. *)
  List.iter
    (fun q ->
      match Histogram.percentile_opt h q with
      | Some v -> Alcotest.(check (float 1e-9)) "faces agree" v (Histogram.percentile h q)
      | None -> Alcotest.fail "expected an answer")
    [ 0.0; 0.25; 0.5; 0.9; 1.0 ]

let test_percentile () =
  let h = uniform_hist () in
  (* Uniform 0..99 in 10 equi-width buckets: the inverse CDF is linear. *)
  Alcotest.(check (float 0.5)) "p0" 0.0 (Histogram.percentile h 0.0);
  Alcotest.(check (float 1.0)) "p50" 50.0 (Histogram.percentile h 0.5);
  Alcotest.(check (float 1.0)) "p90" 90.0 (Histogram.percentile h 0.9);
  Alcotest.(check (float 0.5)) "p100 = hi edge" 100.0 (Histogram.percentile h 1.0);
  Alcotest.(check (float 0.5)) "clamped below" (Histogram.percentile h 0.0)
    (Histogram.percentile h (-3.0));
  (* Monotone in q. *)
  let qs = List.init 11 (fun i -> float_of_int i /. 10.0) in
  let ps = List.map (Histogram.percentile h) qs in
  List.iteri
    (fun i p ->
      if i > 0 then
        Alcotest.(check bool) "monotone" true (p >= List.nth ps (i - 1)))
    ps;
  (* All weight in one bucket: every percentile lands inside it. *)
  let spike = Histogram.build ~buckets:10 ~lo:0 ~hi:99 ~values:[ (7, 500) ] in
  List.iter
    (fun q ->
      let p = Histogram.percentile spike q in
      Alcotest.(check bool) "inside the spike bucket" true (p >= 0.0 && p <= 10.0))
    [ 0.1; 0.5; 0.9; 0.99 ];
  (* Empty histogram degrades to lo. *)
  let empty = Histogram.build ~buckets:4 ~lo:0 ~hi:10 ~values:[] in
  Alcotest.(check (float 0.001)) "empty -> lo" 0.0 (Histogram.percentile empty 0.5)

let test_skewed () =
  (* All weight in one value. *)
  let h = Histogram.build ~buckets:10 ~lo:0 ~hi:99 ~values:[ (7, 500) ] in
  Alcotest.(check (float 0.001)) "total" 500.0 (Histogram.total h);
  Alcotest.(check (float 0.001)) "all below 10" 500.0 (Histogram.estimate_le h 10);
  Alcotest.(check (float 0.001)) "none below 0" 0.0 (Histogram.estimate_le h 0)

let test_clamping_and_errors () =
  let h = Histogram.build ~buckets:4 ~lo:0 ~hi:9 ~values:[ (-5, 1); (100, 1) ] in
  Alcotest.(check (float 0.001)) "clamped total" 2.0 (Histogram.total h);
  Alcotest.(check bool) "zero buckets" true
    (match Histogram.build ~buckets:0 ~lo:0 ~hi:9 ~values:[] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "empty domain" true
    (match Histogram.build ~buckets:2 ~lo:5 ~hi:5 ~values:[] with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- the Source_stats provider ------------------------------------------ *)

let relation_with_a_values values =
  Helpers.abc_relation
    (List.mapi (fun i v -> Helpers.abc_row (Printf.sprintf "k%03d" i) v "x") values)

let test_provider_range_estimates () =
  let r = relation_with_a_values (List.init 200 (fun i -> i mod 100)) in
  let st = Source_stats.histogram ~buckets:10 r in
  Alcotest.(check bool) "not exact" true (not (Source_stats.is_exact st));
  let est = Source_stats.matching_items st (Cond.Cmp ("A", Cond.Lt, Value.Int 50)) in
  (* True: 100 items have A < 50 (two tuples per A value, distinct items
     per tuple). Histogram weight = tuples = 100, capped at distinct. *)
  Alcotest.(check bool) (Printf.sprintf "estimate %.1f in [80, 120]" est) true
    (est >= 80.0 && est <= 120.0)

let test_provider_cap_at_distinct () =
  (* One item with many tuples: tuple-weight must be capped. *)
  let r =
    Helpers.abc_relation (List.init 50 (fun i -> Helpers.abc_row "only" (i mod 10) "x"))
  in
  let st = Source_stats.histogram r in
  let est = Source_stats.matching_items st (Cond.Cmp ("A", Cond.Lt, Value.Int 100)) in
  Alcotest.(check bool) "capped at 1 distinct item" true (est <= 1.0 +. 1e-6)

let test_provider_boolean_combinations () =
  let r = relation_with_a_values (List.init 100 (fun i -> i)) in
  let st = Source_stats.histogram ~buckets:10 r in
  let lt50 = Cond.Cmp ("A", Cond.Lt, Value.Int 50) in
  let ge50 = Cond.Cmp ("A", Cond.Ge, Value.Int 50) in
  let both = Source_stats.matching_items st (Cond.And (lt50, ge50)) in
  let either = Source_stats.matching_items st (Cond.Or (lt50, ge50)) in
  (* Independence assumption: And ≈ 25, Or ≈ 75 — wrong but sane. *)
  Alcotest.(check bool) "and below each part" true
    (both <= Source_stats.matching_items st lt50);
  Alcotest.(check bool) "or above each part" true
    (either >= Source_stats.matching_items st lt50);
  let neg = Source_stats.matching_items st (Cond.Not lt50) in
  Alcotest.(check bool) "not is complement-ish" true (neg >= 40.0 && neg <= 60.0)

let test_provider_string_fallbacks () =
  let r = relation_with_a_values (List.init 100 (fun i -> i)) in
  let st = Source_stats.histogram r in
  let eq = Source_stats.matching_items st (Cond.Cmp ("B", Cond.Eq, Value.String "x")) in
  Alcotest.(check (float 0.001)) "1/10 default" 10.0 eq;
  let prefix = Source_stats.matching_items st (Cond.Prefix ("B", "a")) in
  Alcotest.(check (float 0.001)) "1/4 default" 25.0 prefix

let test_optimizers_work_with_histogram_stats () =
  let instance =
    Fusion_workload.Workload.generate { Fusion_workload.Workload.default_spec with seed = 23 }
  in
  let env =
    Fusion_core.Opt_env.create ~stats:(Fusion_core.Opt_env.Histogram 20)
      instance.Fusion_workload.Workload.sources instance.Fusion_workload.Workload.query
  in
  let optimized = Fusion_core.Optimizer.optimize Fusion_core.Optimizer.Sja env in
  let result = Helpers.execute_plan instance optimized.Fusion_core.Optimized.plan in
  Alcotest.check Helpers.item_set "correct answer under histogram stats"
    (Fusion_core.Reference.answer_query ~sources:instance.Fusion_workload.Workload.sources
       instance.Fusion_workload.Workload.query)
    result.Fusion_plan.Exec.answer

let suite =
  [
    Alcotest.test_case "total" `Quick test_total;
    Alcotest.test_case "estimate below bound" `Quick test_estimate_le;
    Alcotest.test_case "range and point estimates" `Quick test_estimate_range_and_eq;
    Alcotest.test_case "percentile inverse CDF" `Quick test_percentile;
    Alcotest.test_case "percentile guards empty and degenerate" `Quick
      test_percentile_guards;
    Alcotest.test_case "skewed weight" `Quick test_skewed;
    Alcotest.test_case "clamping and errors" `Quick test_clamping_and_errors;
    Alcotest.test_case "provider range estimates" `Quick test_provider_range_estimates;
    Alcotest.test_case "provider caps at distinct items" `Quick test_provider_cap_at_distinct;
    Alcotest.test_case "provider boolean combinations" `Quick
      test_provider_boolean_combinations;
    Alcotest.test_case "provider string fallbacks" `Quick test_provider_string_fallbacks;
    Alcotest.test_case "optimizers run on histogram statistics" `Quick
      test_optimizers_work_with_histogram_stats;
  ]
