(* Failure injection: timeouts, retries, partial answers; and the
   branch-and-bound search (must equal SJA exactly). *)

open Fusion_data
open Fusion_core
open Fusion_plan
module Workload = Fusion_workload.Workload
module Source = Fusion_source.Source
module Prng = Fusion_stats.Prng

let faulty_instance ~probability ~fault_seed seed =
  let instance = Workload.generate { Workload.default_spec with seed } in
  Array.iteri
    (fun j s ->
      Source.set_fault s
        (Some { Source.probability; prng = Prng.create (fault_seed + (31 * j)) }))
    instance.Workload.sources;
  instance

let sja_plan instance =
  let env =
    Opt_env.create ~universe:instance.Workload.spec.Workload.universe
      instance.Workload.sources instance.Workload.query
  in
  (Optimizer.optimize Optimizer.Sja env).Optimized.plan

let run ?(retries = 0) ?(on_exhausted = `Fail) (instance : Workload.instance) plan =
  Array.iter Source.reset_meter instance.Workload.sources;
  Exec.run
    ~policy:{ Exec.retries; on_exhausted }
    ~sources:instance.Workload.sources
    ~conds:(Fusion_query.Query.conditions instance.Workload.query)
    plan

let test_always_failing_raises () =
  let instance = faulty_instance ~probability:1.0 ~fault_seed:1 3 in
  let plan = sja_plan instance in
  Alcotest.(check bool) "timeout raised" true
    (match run instance plan with
    | exception Source.Timeout _ -> true
    | _ -> false)

let test_always_failing_partial_mode () =
  let instance = faulty_instance ~probability:1.0 ~fault_seed:1 3 in
  let plan = sja_plan instance in
  let result = run ~retries:1 ~on_exhausted:`Partial instance plan in
  Alcotest.(check bool) "marked partial" true result.Exec.partial;
  Alcotest.check Helpers.item_set "empty answer (no source reachable)" Item_set.empty
    result.Exec.answer;
  Alcotest.(check bool) "failures counted" true (result.Exec.failures > 0);
  (* Every failed attempt still paid its overhead. *)
  Alcotest.(check bool) "timeouts were charged" true (result.Exec.total_cost > 0.0)

let test_retries_recover_flaky_sources () =
  (* 30% failure probability, generous retries: the answer must be
     complete and correct. *)
  let instance = faulty_instance ~probability:0.3 ~fault_seed:5 7 in
  let plan = sja_plan instance in
  let result = run ~retries:50 instance plan in
  Alcotest.(check bool) "not partial" false result.Exec.partial;
  Alcotest.(check bool) "saw failures" true (result.Exec.failures > 0);
  Array.iter (fun s -> Source.set_fault s None) instance.Workload.sources;
  let clean = run instance plan in
  Alcotest.check Helpers.item_set "same answer as fault-free" clean.Exec.answer
    result.Exec.answer;
  Alcotest.(check bool) "retries cost extra" true
    (result.Exec.total_cost > clean.Exec.total_cost)

let test_partial_answer_is_subset () =
  (* One permanently dead source, partial mode: the answer must be a
     subset of the true answer (conditions can only lose evidence). *)
  let instance = Workload.generate { Workload.default_spec with seed = 11 } in
  Source.set_fault
    instance.Workload.sources.(0)
    (Some { Source.probability = 1.0; prng = Prng.create 9 });
  let plan = sja_plan instance in
  let result = run ~on_exhausted:`Partial instance plan in
  Alcotest.(check bool) "partial" true result.Exec.partial;
  let truth =
    Reference.answer_query ~sources:instance.Workload.sources instance.Workload.query
  in
  Alcotest.(check bool) "subset of the true answer" true
    (Item_set.subset result.Exec.answer truth)

let test_mediator_surfaces_failures () =
  let instance = faulty_instance ~probability:1.0 ~fault_seed:13 17 in
  let mediator = Fusion_mediator.Mediator.create_exn (Array.to_list instance.Workload.sources) in
  (match Fusion_mediator.Mediator.run mediator instance.Workload.query with
  | Error msg ->
    Alcotest.(check bool) ("mentions unreachable: " ^ msg) true
      (Option.is_some (Str_find.find_substring msg "unreachable"))
  | Ok _ -> Alcotest.fail "expected an error");
  match
    Fusion_mediator.Mediator.run
      ~config:
        {
          Fusion_mediator.Mediator.Config.default with
          Fusion_mediator.Mediator.Config.on_exhausted = `Partial;
        }
      mediator instance.Workload.query
  with
  | Error msg -> Alcotest.fail msg
  | Ok report ->
    Alcotest.(check bool) "partial flagged" true report.Fusion_mediator.Mediator.partial

let qcheck_faulty_execution_sound =
  Helpers.qtest ~count:40 "flaky sources + retries keep answers correct"
    QCheck2.Gen.(pair Helpers.spec_gen (int_range 0 1_000_000))
    (fun (spec, fault_seed) -> Helpers.spec_print spec ^ Printf.sprintf " fault=%d" fault_seed)
    (fun (spec, fault_seed) ->
      let instance = Workload.generate spec in
      Array.iteri
        (fun j s ->
          Source.set_fault s
            (Some { Source.probability = 0.2; prng = Prng.create (fault_seed + (31 * j)) }))
        instance.Workload.sources;
      let plan = sja_plan instance in
      let result = run ~retries:200 instance plan in
      Array.iter (fun s -> Source.set_fault s None) instance.Workload.sources;
      (not result.Exec.partial)
      && Item_set.equal result.Exec.answer
           (Reference.answer_query ~sources:instance.Workload.sources
              instance.Workload.query))

(* --- distributed churn --------------------------------------------------- *)

(* The coordinator's failover must absorb whatever replica churn the
   draw deals out — killed primaries and flaky survivors alike — and
   still reproduce the fault-free reference answer. *)
let qcheck_coordinator_survives_replica_churn =
  Helpers.qtest ~count:25 "replica churn: coordinator failover stays exact"
    QCheck2.Gen.(pair Helpers.spec_gen (int_range 0 1_000_000))
    (fun (spec, churn_seed) ->
      Helpers.spec_print spec ^ Printf.sprintf " churn=%d" churn_seed)
    (fun (spec, churn_seed) ->
      let open Fusion_dist in
      let instance = Workload.generate spec in
      let expected =
        Reference.answer_query ~sources:instance.Workload.sources instance.Workload.query
      in
      let cluster =
        Helpers.check_ok
          (Cluster.create ~shards:2 ~replicas:2
             (Array.to_list instance.Workload.sources))
      in
      (* Churn schedule: per replica group, kill one random replica
         half the time; flake the survivor at 20%. *)
      let prng = Prng.create churn_seed in
      for shard = 0 to Cluster.shards cluster - 1 do
        for j = 0 to Cluster.n_sources cluster - 1 do
          let dead = if Prng.bool prng then Some (Prng.int prng 2) else None in
          Option.iter (fun r -> Cluster.kill cluster ~shard ~source:j ~replica:r) dead;
          for r = 0 to 1 do
            if dead <> Some r then
              Cluster.set_fault cluster ~shard ~source:j ~replica:r
                (Some
                   {
                     Source.probability = 0.2;
                     prng = Prng.create (churn_seed + (31 * ((shard * 100) + (2 * j) + r)));
                   })
          done
        done
      done;
      let config =
        { Coordinator.Config.default with Coordinator.Config.retries = 200 }
      in
      match Coordinator.run ~config cluster instance.Workload.query with
      | Error msg -> Alcotest.failf "coordinator failed: %s" msg
      | Ok r ->
        Item_set.equal r.Coordinator.r_answer expected && not r.Coordinator.r_partial)

(* --- branch and bound ---------------------------------------------------- *)

let qcheck_branch_bound_matches_sja =
  Helpers.qtest ~count:60 "branch-and-bound equals SJA's optimum" Helpers.spec_gen
    Helpers.spec_print (fun spec ->
      let instance = Workload.generate spec in
      let env =
        Opt_env.create ~universe:spec.Workload.universe instance.Workload.sources
          instance.Workload.query
      in
      let sja = Algorithms.sja env in
      let bb = Branch_bound.sja_bb env in
      Float.abs (sja.Optimized.est_cost -. bb.Optimized.est_cost)
      <= 1e-6 +. (1e-9 *. Float.abs sja.Optimized.est_cost))

let test_branch_bound_prunes () =
  let instance =
    Workload.generate
      {
        Workload.default_spec with
        Workload.n_sources = 6;
        selectivities = [| 0.02; 0.1; 0.2; 0.3; 0.4; 0.5 |];
        seed = 19;
      }
  in
  let env =
    Opt_env.create ~universe:instance.Workload.spec.Workload.universe
      instance.Workload.sources instance.Workload.query
  in
  let visited, total_orderings = Branch_bound.visited_orderings env in
  (* A full enumeration expands m!·(something) prefix nodes; the bound
     must cut a material share. Total prefix nodes of the full tree is
     sum_k m!/(m-k)! ≥ m!; require visited < m!. *)
  Alcotest.(check bool)
    (Printf.sprintf "visited %d < %d prefix nodes" visited total_orderings)
    true
    (visited < total_orderings)

let test_adaptive_retries () =
  let instance = faulty_instance ~probability:0.3 ~fault_seed:21 9 in
  let env =
    Opt_env.create ~universe:instance.Workload.spec.Workload.universe
      instance.Workload.sources instance.Workload.query
  in
  let result = Adaptive.run ~retries:200 env in
  Array.iter (fun s -> Source.set_fault s None) instance.Workload.sources;
  Alcotest.check Helpers.item_set "exact despite flakiness"
    (Reference.answer_query ~sources:instance.Workload.sources instance.Workload.query)
    result.Adaptive.answer

let test_sja_trace () =
  let instance = Workload.generate { Workload.default_spec with seed = 31 } in
  let env =
    Opt_env.create ~universe:instance.Workload.spec.Workload.universe
      instance.Workload.sources instance.Workload.query
  in
  let trace = Algorithms.sja_trace env in
  let m = Fusion_query.Query.m instance.Workload.query in
  Alcotest.(check int) "m! entries" (Perm.count m) (List.length trace);
  (match trace with
  | (_, cheapest) :: rest ->
    Alcotest.(check (float 0.001)) "cheapest = sja" (Algorithms.sja env).Optimized.est_cost
      cheapest;
    List.iter (fun (_, c) -> Alcotest.(check bool) "sorted" true (c >= cheapest)) rest
  | [] -> Alcotest.fail "empty trace");
  (* Orderings are distinct permutations. *)
  let distinct =
    List.sort_uniq compare (List.map (fun (o, _) -> Array.to_list o) trace)
  in
  Alcotest.(check int) "all distinct" (Perm.count m) (List.length distinct)

(* --- iterative improvement ----------------------------------------------- *)

let qcheck_hill_climb_bounds =
  Helpers.qtest ~count:60 "hill climb: ⩽ greedy, ⩾ exact" Helpers.spec_gen
    Helpers.spec_print (fun spec ->
      let instance = Workload.generate spec in
      let env =
        Opt_env.create ~universe:spec.Workload.universe instance.Workload.sources
          instance.Workload.query
      in
      let greedy = (Algorithms.greedy_sja env).Optimized.est_cost in
      let hill = (Iterative.sja_hill_climb env).Optimized.est_cost in
      let exact = (Algorithms.sja env).Optimized.est_cost in
      hill <= greedy +. 1e-6 && hill >= exact -. 1e-6)

(* An adversarial cost model where ordering by selectivity is wrong:
   the most selective condition is outrageously expensive to evaluate
   by selection, so it must come second (as cheap semijoins) — greedy
   puts it first; hill climbing recovers the optimum. *)
let test_hill_climb_beats_greedy_on_adversarial_model () =
  let instance =
    Workload.generate
      { Workload.default_spec with n_sources = 3; selectivities = [| 0.05; 0.4 |]; seed = 29 }
  in
  let base = Opt_env.create ~universe:2000 instance.Workload.sources instance.Workload.query in
  let selective = base.Opt_env.conds.(0) in
  let model =
    {
      Fusion_cost.Model.sq_cost =
        (fun _ c -> if Fusion_cond.Cond.equal c selective then 10_000.0 else 100.0);
      sjq_cost = (fun _ _ x -> 10.0 +. (0.1 *. x));
      lq_cost = (fun _ -> infinity);
    }
  in
  let env = { base with Opt_env.model } in
  let greedy = (Algorithms.greedy_sja env).Optimized.est_cost in
  let hill = (Iterative.sja_hill_climb env).Optimized.est_cost in
  let exact = (Algorithms.sja env).Optimized.est_cost in
  Alcotest.(check bool)
    (Printf.sprintf "greedy %.1f > exact %.1f" greedy exact)
    true (greedy > exact +. 1.0);
  Alcotest.(check (float 0.001)) "hill climb finds the optimum" exact hill

let test_branch_bound_plan_sound () =
  let instance = Workload.generate { Workload.default_spec with seed = 23 } in
  let env =
    Opt_env.create ~universe:instance.Workload.spec.Workload.universe
      instance.Workload.sources instance.Workload.query
  in
  let bb = Branch_bound.sja_bb env in
  let result = Helpers.execute_plan instance bb.Optimized.plan in
  Alcotest.check Helpers.item_set "correct answer"
    (Reference.answer_query ~sources:instance.Workload.sources instance.Workload.query)
    result.Exec.answer

let suite =
  [
    Alcotest.test_case "always-failing source raises" `Quick test_always_failing_raises;
    Alcotest.test_case "partial mode on dead federation" `Quick
      test_always_failing_partial_mode;
    Alcotest.test_case "retries recover flaky sources" `Quick
      test_retries_recover_flaky_sources;
    Alcotest.test_case "partial answers are subsets" `Quick test_partial_answer_is_subset;
    Alcotest.test_case "mediator surfaces failures" `Quick test_mediator_surfaces_failures;
    qcheck_faulty_execution_sound;
    qcheck_coordinator_survives_replica_churn;
    Alcotest.test_case "adaptive runtime retries" `Quick test_adaptive_retries;
    Alcotest.test_case "sja search trace" `Quick test_sja_trace;
    qcheck_branch_bound_matches_sja;
    Alcotest.test_case "branch-and-bound prunes" `Quick test_branch_bound_prunes;
    Alcotest.test_case "branch-and-bound plan sound" `Quick test_branch_bound_plan_sound;
    qcheck_hill_climb_bounds;
    Alcotest.test_case "hill climb beats greedy on adversarial costs" `Quick
      test_hill_climb_beats_greedy_on_adversarial_model;
  ]
