(* Oracle equivalence for the columnar data plane.

   Three layers, each checked against an independent reference:
   - the struct-of-arrays {!Relation} against {!Relation_ref} (the
     boxed-row implementation it replaced) under mixed insert/delete
     workloads — every observable: tuples, items, probes, predicates;
   - {!Cond_vec} compiled column scans against [Cond.eval] row by row,
     including reuse of one compiled scan across mutations;
   - {!Plan_compile} against {!Exec.run} over random optimized plan
     DAGs — answers, step lists, costs, cache hit/miss protocol — and
     a compiled plan reused across deltas against fresh full runs
     (the PR-9 incremental-equals-full property, on columnar). *)

open Fusion_data
open Fusion_cond
open Fusion_core
open Fusion_plan
module Source = Fusion_source.Source
module Workload = Fusion_workload.Workload
module Prng = Fusion_stats.Prng
module Query = Fusion_query.Query
module Delta = Fusion_delta.Delta
module Maintained = Fusion_delta.Maintained

(* --- columnar Relation ≡ Relation_ref ------------------------------------ *)

(* A mixed workload over the abc schema: tuples drawn from a small
   universe so inserts collide, deletes hit both present and absent
   tuples, and duplicate rows exercise the multi-position index. *)
let abc_tuple_gen =
  QCheck2.Gen.(
    let* k = int_range 0 7 in
    let* a = oneof [ return Value.Null; map (fun a -> Value.Int a) (int_range (-3) 6) ] in
    let* b = string_size ~gen:(char_range 'a' 'c') (int_range 0 2) in
    return
      (Tuple.create_exn Helpers.abc_schema
         [ Value.String (Printf.sprintf "k%d" k); a; Value.String b ]))

type wop = Insert of Tuple.t | Remove of Tuple.t

let wop_gen =
  QCheck2.Gen.(
    oneof
      [
        map (fun t -> Insert t) abc_tuple_gen;
        map (fun t -> Remove t) abc_tuple_gen;
      ])

let wop_print = function
  | Insert t -> "+" ^ Format.asprintf "%a" Tuple.pp t
  | Remove t -> "-" ^ Format.asprintf "%a" Tuple.pp t

let sorted_rows tuples = List.sort Tuple.compare tuples

(* Conditions over the abc schema that touch every node kind the
   compiler distinguishes: the N_eq fast path, memoized comparisons on
   both columns, Between / In_list / Prefix classes, null tests. *)
let abc_cond_gen : Cond.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let cmp = oneofl [ Cond.Eq; Ne; Lt; Le; Gt; Ge ] in
  let leaf =
    oneof
      [
        return Cond.True;
        map2 (fun op v -> Cond.Cmp ("A", op, Value.Int v)) cmp (int_range (-4) 7);
        map2
          (fun lo len -> Cond.Between ("A", Value.Int lo, Value.Int (lo + len)))
          (int_range (-4) 4) (int_range 0 6);
        map
          (fun vs -> Cond.In_list ("A", List.map (fun v -> Value.Int v) vs))
          (list_size (int_range 1 4) (int_range (-2) 6));
        map (fun s -> Cond.Prefix ("B", s))
          (string_size ~gen:(char_range 'a' 'c') (int_range 0 2));
        return (Cond.Is_null "A");
        map2 (fun op s -> Cond.Cmp ("B", op, Value.String s)) cmp
          (string_size ~gen:(char_range 'a' 'c') (int_range 0 2));
        map (fun k -> Cond.Cmp ("M", Eq, Value.String (Printf.sprintf "k%d" k)))
          (int_range 0 8);
      ]
  in
  let rec tree depth =
    if depth = 0 then leaf
    else
      oneof
        [
          leaf;
          map2 (fun a b -> Cond.And (a, b)) (tree (depth - 1)) (tree (depth - 1));
          map2 (fun a b -> Cond.Or (a, b)) (tree (depth - 1)) (tree (depth - 1));
          map (fun a -> Cond.Not a) (tree (depth - 1));
        ]
  in
  tree 2

let probe_gen =
  QCheck2.Gen.(
    map
      (fun ks ->
        Item_set.of_list (List.map (fun k -> Value.String (Printf.sprintf "k%d" k)) ks))
      (list_size (int_range 0 6) (int_range 0 9)))

let workload_gen =
  QCheck2.Gen.(
    triple
      (list_size (int_range 0 40) wop_gen)
      abc_cond_gen probe_gen)

let workload_print (ops, cond, probe) =
  Printf.sprintf "ops=[%s] cond=%s probe=%s"
    (String.concat "; " (List.map wop_print ops))
    (Cond.to_string cond)
    (Format.asprintf "%a" Item_set.pp probe)

let relation_matches_ref =
  Helpers.qtest ~count:300 "columnar relation ≡ boxed-row reference" workload_gen
    workload_print (fun (ops, cond, probe) ->
      let col = Relation.create ~name:"R" Helpers.abc_schema in
      let ref_ = Relation_ref.create ~name:"R" Helpers.abc_schema in
      let pred = Cond.compile Helpers.abc_schema cond in
      let ok = ref true in
      let agree () =
        ok :=
          !ok
          && Relation.cardinality col = Relation_ref.cardinality ref_
          && sorted_rows (Relation.tuples col) = sorted_rows (Relation_ref.tuples ref_)
          && Item_set.equal (Relation.items col) (Relation_ref.items ref_)
          && Relation.distinct_item_count col = Relation_ref.distinct_item_count ref_
          && Item_set.equal (Relation.select_items col pred)
               (Relation_ref.select_items ref_ pred)
          && Item_set.equal
               (Relation.semijoin_items col pred probe)
               (Relation_ref.semijoin_items ref_ pred probe)
          && Relation.count_matching col pred = Relation_ref.count_matching ref_ pred
          && sorted_rows (Relation.select_tuples col pred)
             = sorted_rows (Relation_ref.select_tuples ref_ pred)
      in
      agree ();
      List.iter
        (fun op ->
          (match op with
          | Insert t ->
            Relation.insert col t;
            Relation_ref.insert ref_ t
          | Remove t ->
            let a = Relation.remove col t and b = Relation_ref.remove ref_ t in
            ok := !ok && a = b);
          (* per-item evidence agrees for every live item *)
          Item_set.iter
            (fun item ->
              ok :=
                !ok
                && sorted_rows (Relation.tuples_of_item col item)
                   = sorted_rows (Relation_ref.tuples_of_item ref_ item))
            (Relation.items col);
          agree ())
        ops;
      !ok)

(* --- Cond_vec ≡ Cond.eval ------------------------------------------------ *)

(* The compiled scan must agree with per-row interpretation on the same
   relation — including after further inserts and deletes, since a
   compiled scan's lifetime spans mutations (wrappers and maintained
   queries cache them). *)
let cond_vec_matches_eval =
  Helpers.qtest ~count:300 "compiled column scan ≡ row-by-row eval" workload_gen
    workload_print (fun (ops, cond, probe) ->
      let rel = Relation.create ~name:"R" Helpers.abc_schema in
      let vec = Cond_vec.compile rel cond in
      let schema = Helpers.abc_schema in
      let reference_select () =
        Relation.select_items rel (fun t -> Cond.eval schema cond t)
      in
      let reference_semijoin () =
        Relation.semijoin_items rel (fun t -> Cond.eval schema cond t) probe
      in
      let reference_count () =
        Relation.fold
          (fun acc t -> if Cond.eval schema cond t then acc + 1 else acc)
          0 rel
      in
      let ok = ref true in
      let agree () =
        ok :=
          !ok
          && Item_set.equal (Cond_vec.select_items vec) (reference_select ())
          && Item_set.equal (Cond_vec.semijoin_items vec probe) (reference_semijoin ())
          && Cond_vec.count_rows vec = reference_count ()
          && Cond_vec.count_items vec = Item_set.cardinal (reference_select ())
      in
      agree ();
      List.iter
        (fun op ->
          (match op with
          | Insert t -> Relation.insert rel t
          | Remove t -> ignore (Relation.remove rel t));
          agree ())
        ops;
      !ok)

(* --- Plan_compile ≡ Exec over random plan DAGs --------------------------- *)

let plan_gen =
  QCheck2.Gen.(pair Helpers.spec_gen (int_range 0 (List.length Optimizer.all - 1)))

let plan_print (spec, i) =
  Printf.sprintf "%s %s" (Optimizer.name (List.nth Optimizer.all i)) (Helpers.spec_print spec)

let instance_and_plan (spec, i) =
  let instance = Workload.generate spec in
  let env =
    Opt_env.create ~universe:spec.Workload.universe instance.Workload.sources
      instance.Workload.query
  in
  (instance, (Optimizer.optimize (List.nth Optimizer.all i) env).Optimized.plan)

let same_steps (a : Exec.step list) (b : Exec.step list) =
  List.length a = List.length b
  && List.for_all2
       (fun (x : Exec.step) (y : Exec.step) ->
         x.Exec.op = y.Exec.op
         && Float.abs (x.Exec.cost -. y.Exec.cost) < 1e-9
         && x.Exec.result_size = y.Exec.result_size)
       a b

let same_result (a : Exec.result) (b : Exec.result) =
  Item_set.equal a.Exec.answer b.Exec.answer
  && Float.abs (a.Exec.total_cost -. b.Exec.total_cost) < 1e-6
  && a.Exec.failures = b.Exec.failures
  && a.Exec.partial = b.Exec.partial
  && same_steps a.Exec.steps b.Exec.steps

let run_interp instance plan ?cache () =
  Array.iter Source.reset_meter instance.Workload.sources;
  Exec.run ?cache ~sources:instance.Workload.sources
    ~conds:(Query.conditions instance.Workload.query)
    plan

let compiled_equals_interpreted =
  Helpers.qtest ~count:80 "compiled plan ≡ interpreted execution" plan_gen plan_print
    (fun input ->
      let instance, plan = instance_and_plan input in
      let conds = Query.conditions instance.Workload.query in
      match Plan_compile.compile ~sources:instance.Workload.sources ~conds plan with
      | Error msg -> QCheck2.Test.fail_reportf "compile failed: %s" msg
      | Ok cp ->
        let reference = run_interp instance plan () in
        Array.iter Source.reset_meter instance.Workload.sources;
        let compiled = Plan_compile.run cp in
        (* and again: the compiled form holds mutable scratch — reuse
           must be invisible *)
        Array.iter Source.reset_meter instance.Workload.sources;
        let again = Plan_compile.run cp in
        Array.iter Source.reset_meter instance.Workload.sources;
        let answer_only = Plan_compile.answer cp in
        same_result reference compiled
        && same_result compiled again
        && Item_set.equal answer_only reference.Exec.answer)

let compiled_cache_protocol =
  Helpers.qtest ~count:60 "compiled plan follows the cache protocol" plan_gen
    plan_print (fun input ->
      let instance, plan = instance_and_plan input in
      let conds = Query.conditions instance.Workload.query in
      match Plan_compile.compile ~sources:instance.Workload.sources ~conds plan with
      | Error msg -> QCheck2.Test.fail_reportf "compile failed: %s" msg
      | Ok cp ->
        let ci = Exec.Query_cache.create () and cc = Exec.Query_cache.create () in
        (* cold then warm, on both engines: answers, costs and the
           hit/miss accounting must track each other run for run *)
        let ok = ref true in
        for _round = 1 to 2 do
          let ri = run_interp instance plan ~cache:ci () in
          Array.iter Source.reset_meter instance.Workload.sources;
          let rc = Plan_compile.run ~cache:cc cp in
          let si = Exec.Query_cache.stats ci and sc = Exec.Query_cache.stats cc in
          ok :=
            !ok && same_result ri rc
            && si.Exec.Query_cache.hits = sc.Exec.Query_cache.hits
            && si.Exec.Query_cache.misses = sc.Exec.Query_cache.misses
            && Float.abs
                 (si.Exec.Query_cache.saved_cost -. sc.Exec.Query_cache.saved_cost)
               < 1e-6
        done;
        !ok)

(* --- compiled plan reused across deltas ---------------------------------- *)

(* The serving layer keeps one compiled plan per cached query and reruns
   it as sources mutate: compiled scans must track the data. After each
   random insert/delete batch, rerunning the *same* compiled plan must
   equal a fresh interpreted run, and the maintained incremental answer
   must equal both (incremental ≡ full, on the columnar plane). *)
let mutation_gen =
  QCheck2.Gen.(
    triple Helpers.spec_gen
      (int_range 0 (List.length Optimizer.all - 1))
      (int_range 1 3))

let mutation_print (spec, i, rounds) =
  Printf.sprintf "%s, %d rounds, %s"
    (Optimizer.name (List.nth Optimizer.all i))
    rounds (Helpers.spec_print spec)

let random_delta prng instance rel =
  let spec = instance.Workload.spec in
  let m = Query.m instance.Workload.query in
  let existing = Relation.tuples rel in
  let n_del = Prng.int prng 4 and n_ins = Prng.int prng 4 in
  let deletes = List.filteri (fun i _ -> i < n_del) existing in
  let inserts =
    List.init n_ins (fun _ ->
        let item =
          Printf.sprintf "I%06d" (Prng.int prng (max 1 spec.Workload.universe))
        in
        Tuple.create_exn instance.Workload.schema
          (Value.String item
          :: List.init m (fun _ -> Value.Int (Prng.int prng 1500))))
  in
  Delta.make ~inserts ~deletes

let compiled_tracks_deltas =
  Helpers.qtest ~count:30 "compiled plan + maintained answer track deltas"
    mutation_gen mutation_print (fun (spec, algo_i, rounds) ->
      let instance, plan = instance_and_plan (spec, algo_i) in
      let conds = Query.conditions instance.Workload.query in
      match Plan_compile.compile ~sources:instance.Workload.sources ~conds plan with
      | Error msg -> QCheck2.Test.fail_reportf "compile failed: %s" msg
      | Ok cp ->
        let m =
          Helpers.check_ok
            (Maintained.create ~query:instance.Workload.query
               ~sources:(Array.to_list instance.Workload.sources)
               plan)
        in
        let prng = Prng.create (spec.Workload.seed + 67) in
        let n = Array.length instance.Workload.sources in
        let ok = ref true in
        let agree () =
          let full = (run_interp instance plan ()).Exec.answer in
          Array.iter Source.reset_meter instance.Workload.sources;
          let compiled = Plan_compile.answer cp in
          ok :=
            !ok && Item_set.equal compiled full
            && Item_set.equal (Maintained.answer m) full
        in
        agree ();
        for _round = 1 to rounds do
          let j = Prng.int prng n in
          let rel = Source.relation instance.Workload.sources.(j) in
          ignore (Maintained.mutate m ~source:j (random_delta prng instance rel));
          agree ()
        done;
        !ok)

let suite =
  [
    relation_matches_ref;
    cond_vec_matches_eval;
    compiled_equals_interpreted;
    compiled_cache_protocol;
    compiled_tracks_deltas;
  ]
