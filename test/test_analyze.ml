(* Trace analytics: span-tree reconstruction, the critical-path
   profiler and its makespan invariant, per-source loads and blame,
   percentile summaries, and the Chrome/Prometheus exporters. *)

open Fusion_core
open Fusion_plan
module Workload = Fusion_workload.Workload
module Source = Fusion_source.Source
module Mediator = Fusion_mediator.Mediator
module Trace = Fusion_obs.Trace
module Metrics = Fusion_obs.Metrics
module Json = Fusion_obs.Json
module Jsonl = Fusion_obs.Jsonl
module Analyze = Fusion_obs.Analyze
module Summary = Fusion_obs.Summary
module Chrome = Fusion_obs.Chrome
module Prom = Fusion_obs.Prom

(* --- span tree ----------------------------------------------------------- *)

let nested_spans () =
  let c = Trace.create ~clock:(fun () -> 0.0) () in
  Trace.with_collector c (fun () ->
      Trace.span Trace.Run "run" (fun _ ->
          Trace.span Trace.Optimize "opt" (fun _ ->
              Trace.span Trace.Postopt "sja" (fun _ -> ()));
          Trace.span Trace.Step "s1" (fun _ -> ());
          Trace.span Trace.Step "s2" (fun _ ->
              Trace.span Trace.Request "rq" (fun _ -> ()))));
  Trace.spans c

let test_tree_structure () =
  let spans = nested_spans () in
  match Analyze.tree spans with
  | [ root ] ->
    Alcotest.(check string) "root" "run" root.Analyze.span.Trace.name;
    Alcotest.(check int) "root children" 3 (List.length root.Analyze.children);
    let names =
      List.map (fun n -> n.Analyze.span.Trace.name) root.Analyze.children
    in
    Alcotest.(check (list string)) "child order" [ "opt"; "s1"; "s2" ] names
  | forest -> Alcotest.failf "expected one root, got %d" (List.length forest)

let test_flatten_is_id_order () =
  let spans = nested_spans () in
  let ids = List.map (fun s -> s.Trace.id) (Analyze.flatten (Analyze.tree spans)) in
  Alcotest.(check (list int)) "preorder = id order" [ 0; 1; 2; 3; 4; 5 ] ids

(* A sub-trace whose parent span was not captured keeps its spans as
   roots instead of dropping them. *)
let test_tree_dangling_parent () =
  let spans = nested_spans () in
  let without_root =
    List.filter (fun s -> s.Trace.name <> "run") spans
  in
  let forest = Analyze.tree without_root in
  Alcotest.(check int) "three dangling roots" 3 (List.length forest)

(* --- critical path on hand-built schedules ------------------------------- *)

let task ?(deps = []) ?(cond = None) ~id ~server ~start ~finish () =
  {
    Analyze.id;
    server;
    start;
    finish;
    deps;
    label = Printf.sprintf "t%d" id;
    cond;
  }

(* Two servers; task 2 waits on a dependency, task 3 queues behind 2 on
   server 1. Path: 0 -> 2 (dep) -> 3 (queue). *)
let diamond =
  [
    task ~id:0 ~server:0 ~start:0.0 ~finish:10.0 ();
    task ~id:1 ~server:1 ~start:0.0 ~finish:4.0 ();
    task ~id:2 ~server:1 ~deps:[ 0; 1 ] ~start:10.0 ~finish:14.0 ();
    task ~id:3 ~server:1 ~start:14.0 ~finish:21.0 ();
  ]

let test_critical_path_edges () =
  let path = Analyze.critical_path diamond in
  Alcotest.(check (float 1e-9)) "total = makespan" path.Analyze.makespan
    path.Analyze.total;
  let shape =
    List.map
      (fun h ->
        ( h.Analyze.task.Analyze.id,
          match h.Analyze.edge with
          | Analyze.Start -> "start"
          | Analyze.Dep d -> Printf.sprintf "dep %d" d
          | Analyze.Queue q -> Printf.sprintf "queue %d" q ))
      path.Analyze.hops
  in
  Alcotest.(check (list (pair int string)))
    "hops"
    [ (0, "start"); (2, "dep 0"); (3, "queue 2") ]
    shape

let test_critical_path_empty () =
  let path = Analyze.critical_path [] in
  Alcotest.(check int) "no hops" 0 (List.length path.Analyze.hops);
  Alcotest.(check (float 0.0)) "zero" 0.0 path.Analyze.total

let test_source_loads () =
  match Analyze.source_loads diamond with
  | [ s0; s1 ] ->
    Alcotest.(check int) "s0 requests" 1 s0.Analyze.requests;
    Alcotest.(check (float 1e-9)) "s0 busy" 10.0 s0.Analyze.busy;
    Alcotest.(check (float 1e-9)) "s0 util" (10.0 /. 21.0) s0.Analyze.utilization;
    Alcotest.(check int) "s1 requests" 3 s1.Analyze.requests;
    Alcotest.(check (float 1e-9)) "s1 busy" 15.0 s1.Analyze.busy;
    (* Task 3 was ready at 0 but started at 14. *)
    Alcotest.(check (float 1e-9)) "s1 queue wait" 14.0 s1.Analyze.queue_wait;
    Alcotest.(check (float 1e-9)) "s1 on-path" 11.0 s1.Analyze.on_path
  | loads -> Alcotest.failf "expected 2 sources, got %d" (List.length loads)

let test_blame_shares_sum_to_one () =
  let path = Analyze.critical_path diamond in
  let total =
    List.fold_left (fun acc b -> acc +. b.Analyze.share) 0.0
      (Analyze.blame_sources path)
  in
  Alcotest.(check (float 1e-9)) "shares sum to 1" 1.0 total;
  (* No task carries a condition, so condition blame is empty. *)
  Alcotest.(check int) "no cond blame" 0 (List.length (Analyze.blame_conds path))

let test_to_timeline_round_trip () =
  let timeline = Analyze.to_timeline diamond in
  let back = Analyze.of_timeline timeline in
  Alcotest.(check int) "same size" (List.length diamond) (List.length back);
  List.iter2
    (fun (a : Analyze.task) (b : Analyze.task) ->
      Alcotest.(check int) "id" a.Analyze.id b.Analyze.id;
      Alcotest.(check (float 0.0)) "start" a.Analyze.start b.Analyze.start;
      Alcotest.(check (float 0.0)) "finish" a.Analyze.finish b.Analyze.finish)
    (List.sort compare diamond)
    (List.sort compare back)

(* --- schedules from real runs -------------------------------------------- *)

let dmv_spec = { Workload.default_spec with Workload.n_sources = 4; seed = 7 }

let traced_par_run ?(spec = dmv_spec) ?(algo = Optimizer.Sja_plus) () =
  let instance = Workload.generate spec in
  let mediator =
    Mediator.create_exn (Array.to_list instance.Workload.sources)
  in
  let collector = Trace.create () in
  let config =
    {
      Mediator.Config.default with
      Mediator.Config.algo;
      concurrency = `Par;
      trace = Some collector;
    }
  in
  match Mediator.run ~config mediator instance.Workload.query with
  | Ok report -> report
  | Error msg -> Alcotest.failf "mediator run failed: %s" msg

let test_tasks_of_spans_match_report () =
  let report = traced_par_run () in
  let tasks =
    match Analyze.tasks_of_spans report.Mediator.trace with
    | Ok tasks -> tasks
    | Error msg -> Alcotest.failf "tasks_of_spans: %s" msg
  in
  Alcotest.(check bool) "some source queries dispatched" true (tasks <> []);
  (* The schedule rebuilt from the trace reproduces the report's
     response time and critical path exactly. *)
  Alcotest.(check (float 1e-9)) "makespan = response time"
    report.Mediator.response_time (Analyze.makespan tasks);
  let path = Analyze.critical_path tasks in
  Alcotest.(check (float 1e-9)) "path total = response time"
    report.Mediator.response_time path.Analyze.total;
  match report.Mediator.critical_path with
  | None -> Alcotest.fail "Par report carries no critical path"
  | Some reported ->
    Alcotest.(check (list int)) "same hops as the report"
      (List.map (fun h -> h.Analyze.task.Analyze.id) reported.Analyze.hops)
      (List.map (fun h -> h.Analyze.task.Analyze.id) path.Analyze.hops)

let test_seq_report_has_no_path () =
  let instance = Workload.generate dmv_spec in
  let mediator = Mediator.create_exn (Array.to_list instance.Workload.sources) in
  match Mediator.run mediator instance.Workload.query with
  | Ok report ->
    Alcotest.(check bool) "no critical path under Seq" true
      (report.Mediator.critical_path = None);
    Alcotest.(check bool) "drift is finite" true
      (Float.is_finite report.Mediator.cost_drift)
  | Error msg -> Alcotest.failf "mediator run failed: %s" msg

(* --- the makespan invariant, property-tested ----------------------------- *)

let conds (instance : Workload.instance) =
  Fusion_query.Query.conditions instance.Workload.query

let plan_gen =
  QCheck2.Gen.(pair Helpers.spec_gen (int_range 0 (List.length Optimizer.all - 1)))

let plan_print (spec, i) =
  Printf.sprintf "%s %s"
    (Optimizer.name (List.nth Optimizer.all i))
    (Helpers.spec_print spec)

(* For any workload and plan: the critical path's durations sum to the
   async executor's makespan, and every hop is justified — a [Dep] edge
   is a dataflow dependency of the task, a [Queue] edge stays on the
   same server, and each blocker finishes exactly when its successor
   starts. *)
let critical_path_invariant (spec, i) =
  let instance = Workload.generate spec in
  let env =
    Opt_env.create ~universe:spec.Workload.universe instance.Workload.sources
      instance.Workload.query
  in
  let plan = (Optimizer.optimize (List.nth Optimizer.all i) env).Optimized.plan in
  Array.iter Source.reset_meter instance.Workload.sources;
  let r =
    Exec_async.run ~sources:instance.Workload.sources ~conds:(conds instance) plan
  in
  let tasks = Analyze.of_timeline r.Exec_async.timeline in
  let path = Analyze.critical_path tasks in
  let nodes = Array.of_list (Parallel_exec.dataflow plan) in
  let sums = Float.abs (path.Analyze.total -. r.Exec_async.timeline.Fusion_net.Sim.makespan) < 1e-6 in
  let rec chain = function
    | [] | [ _ ] -> true
    | prev :: (next :: _ as rest) ->
      let justified =
        match next.Analyze.edge with
        | Analyze.Start -> false (* only the first hop may start the chain *)
        | Analyze.Dep d ->
          let _, _, deps = nodes.(next.Analyze.task.Analyze.id) in
          d = prev.Analyze.task.Analyze.id && List.mem d deps
        | Analyze.Queue q ->
          q = prev.Analyze.task.Analyze.id
          && prev.Analyze.task.Analyze.server = next.Analyze.task.Analyze.server
      in
      justified
      && Float.abs (prev.Analyze.task.Analyze.finish -. next.Analyze.task.Analyze.start)
         < 1e-6
      && chain rest
  in
  let first_ok =
    match path.Analyze.hops with
    | [] -> tasks = []
    | first :: _ -> first.Analyze.edge = Analyze.Start
  in
  sums && first_ok && chain path.Analyze.hops

let critical_path_matches_makespan =
  Helpers.qtest ~count:60 "critical path sums to the makespan" plan_gen plan_print
    critical_path_invariant

(* Rebuilding the schedule from the recorded spans gives the same tasks
   as reading the timeline directly. *)
let spans_agree_with_timeline (spec, i) =
  let instance = Workload.generate spec in
  let env =
    Opt_env.create ~universe:spec.Workload.universe instance.Workload.sources
      instance.Workload.query
  in
  let plan = (Optimizer.optimize (List.nth Optimizer.all i) env).Optimized.plan in
  let collector = Trace.create () in
  let r =
    Trace.with_collector collector (fun () ->
        Array.iter Source.reset_meter instance.Workload.sources;
        Exec_async.run ~sources:instance.Workload.sources ~conds:(conds instance)
          plan)
  in
  let from_timeline = Analyze.of_timeline r.Exec_async.timeline in
  match Analyze.tasks_of_spans (Trace.spans collector) with
  | Error _ -> false
  | Ok from_spans ->
    List.length from_spans = List.length from_timeline
    && List.for_all2
         (fun (a : Analyze.task) (b : Analyze.task) ->
           a.Analyze.id = b.Analyze.id
           && a.Analyze.server = b.Analyze.server
           && a.Analyze.deps = b.Analyze.deps
           && Float.abs (a.Analyze.start -. b.Analyze.start) < 1e-9
           && Float.abs (a.Analyze.finish -. b.Analyze.finish) < 1e-9)
         (List.sort compare from_spans)
         (List.sort compare from_timeline)

let trace_rebuilds_timeline =
  Helpers.qtest ~count:40 "trace spans rebuild the timeline" plan_gen plan_print
    spans_agree_with_timeline

(* --- summaries ----------------------------------------------------------- *)

let test_summary_percentiles () =
  let s = Summary.create () in
  for i = 1 to 100 do
    Summary.add s ~cost:(float_of_int i) ~response_time:(float_of_int i) ()
  done;
  let p = Summary.latency_percentiles s in
  Alcotest.(check int) "n" 100 p.Summary.n;
  Alcotest.(check (float 0.0)) "max" 100.0 p.Summary.max;
  Alcotest.(check (float 1e-9)) "mean" 50.5 p.Summary.mean;
  Alcotest.(check bool) "p50 near the median" true
    (Float.abs (p.Summary.p50 -. 50.0) <= 2.0);
  Alcotest.(check bool) "p90 near 90" true (Float.abs (p.Summary.p90 -. 90.0) <= 2.0);
  Alcotest.(check bool) "p99 near 99" true (Float.abs (p.Summary.p99 -. 99.0) <= 2.0);
  Alcotest.(check bool) "percentiles ordered" true
    (p.Summary.p50 <= p.Summary.p90 && p.Summary.p90 <= p.Summary.p99)

let test_summary_empty () =
  let s = Summary.create () in
  let p = Summary.cost_percentiles s in
  Alcotest.(check int) "no runs" 0 p.Summary.n;
  Alcotest.(check (float 0.0)) "p99 of nothing" 0.0 p.Summary.p99;
  Alcotest.(check int) "no drift groups" 0 (List.length (Summary.drift s))

let test_summary_non_finite_guard () =
  let s = Summary.create () in
  Summary.add s ~cost:Float.nan ~response_time:Float.nan ();
  Summary.add s ~cost:10.0 ~response_time:Float.infinity ();
  (* Only non-finite observations: same answer as an empty summary,
     never NaN. *)
  let p = Summary.latency_percentiles s in
  Alcotest.(check int) "non-finite runs dropped" 0 p.Summary.n;
  Alcotest.(check (float 0.0)) "p99 stays 0" 0.0 p.Summary.p99;
  Summary.add s ~cost:5.0 ~response_time:20.0 ();
  let p = Summary.latency_percentiles s in
  Alcotest.(check int) "finite run counted" 1 p.Summary.n;
  Alcotest.(check bool) "p50 is finite" true (Float.is_finite p.Summary.p50);
  Alcotest.(check (float 0.0)) "max from the finite run" 20.0 p.Summary.max

let test_summary_drift () =
  let s = Summary.create () in
  (* "honest" predicted 100, ran 105; "liar" predicted 100, ran 150. *)
  Summary.add s ~plan:"honest" ~est_cost:100.0 ~cost:105.0 ~response_time:105.0 ();
  Summary.add s ~plan:"liar" ~est_cost:100.0 ~cost:150.0 ~response_time:150.0 ();
  Summary.add s ~plan:"liar" ~est_cost:100.0 ~cost:150.0 ~response_time:150.0 ();
  match Summary.drift s with
  | [ honest; liar ] ->
    Alcotest.(check string) "keys sorted" "honest" honest.Summary.plan;
    Alcotest.(check bool) "honest not flagged" false honest.Summary.flagged;
    Alcotest.(check bool) "liar flagged" true liar.Summary.flagged;
    Alcotest.(check int) "liar runs" 2 liar.Summary.runs;
    Alcotest.(check (float 1e-9)) "liar ratio" 1.5 liar.Summary.ratio
  | groups -> Alcotest.failf "expected 2 drift groups, got %d" (List.length groups)

(* --- exporters ----------------------------------------------------------- *)

let test_chrome_is_valid_json () =
  let report = traced_par_run () in
  let text = Chrome.to_string report.Mediator.trace in
  let json = Helpers.check_ok (Json.of_string text) in
  match Json.member "traceEvents" json with
  | Some (Json.List events) ->
    Alcotest.(check bool) "has events" true (events <> []);
    List.iter
      (fun ev ->
        let field name = Option.is_some (Json.member name ev) in
        Alcotest.(check bool) "ph" true (field "ph");
        Alcotest.(check bool) "pid" true (field "pid");
        Alcotest.(check bool) "name" true (field "name");
        match Option.bind (Json.member "ph" ev) Json.to_str with
        | Some "X" ->
          let dur =
            Option.bind (Json.member "dur" ev) Json.to_float |> Option.get
          in
          Alcotest.(check bool) "dur >= 0" true (dur >= 0.0)
        | Some "M" -> ()
        | ph -> Alcotest.failf "unexpected phase %s" (Option.value ~default:"?" ph))
      events
  | _ -> Alcotest.fail "no traceEvents array"

let test_chrome_schedule_thread_per_source () =
  let report = traced_par_run () in
  let json = Chrome.of_spans report.Mediator.trace in
  let events =
    match Json.member "traceEvents" json with
    | Some (Json.List events) -> events
    | _ -> Alcotest.fail "no traceEvents"
  in
  (* Every dispatched step appears in the schedule process (pid 1). *)
  let schedule_events =
    List.filter
      (fun ev ->
        Option.bind (Json.member "pid" ev) Json.to_int = Some 1
        && Option.bind (Json.member "ph" ev) Json.to_str = Some "X")
      events
  in
  let tasks =
    Helpers.check_ok
      (Result.map_error (fun e -> e) (Analyze.tasks_of_spans report.Mediator.trace))
  in
  Alcotest.(check int) "one schedule event per dispatched task"
    (List.length tasks) (List.length schedule_events)

let test_prom_exposition () =
  let r = Metrics.create () in
  Metrics.incr r ~labels:[ ("source", "R1") ] "fusion_requests_total";
  Metrics.incr r ~labels:[ ("source", "R1") ] "fusion_requests_total";
  Metrics.gauge r "fusion_up" 1.0;
  Metrics.observe r ~spec:{ Metrics.lo = 0; hi = 100; buckets = 4 } "fusion_sz" 10;
  Metrics.observe r ~spec:{ Metrics.lo = 0; hi = 100; buckets = 4 } "fusion_sz" 80;
  let text = Prom.of_registry r in
  let has needle =
    Alcotest.(check bool) needle true
      (Option.is_some (Str_find.find_substring text needle))
  in
  has "# TYPE fusion_requests_total counter";
  has "fusion_requests_total{source=\"R1\"} 2";
  has "# TYPE fusion_up gauge";
  has "# TYPE fusion_sz histogram";
  has "fusion_sz_bucket{le=\"+Inf\"} 2";
  has "fusion_sz_count 2"

let suite =
  [
    Alcotest.test_case "span tree structure" `Quick test_tree_structure;
    Alcotest.test_case "flatten is id order" `Quick test_flatten_is_id_order;
    Alcotest.test_case "dangling parents stay roots" `Quick test_tree_dangling_parent;
    Alcotest.test_case "critical path edges" `Quick test_critical_path_edges;
    Alcotest.test_case "critical path of nothing" `Quick test_critical_path_empty;
    Alcotest.test_case "source loads" `Quick test_source_loads;
    Alcotest.test_case "blame shares" `Quick test_blame_shares_sum_to_one;
    Alcotest.test_case "timeline round trip" `Quick test_to_timeline_round_trip;
    Alcotest.test_case "tasks from a traced run" `Quick test_tasks_of_spans_match_report;
    Alcotest.test_case "seq report has no path" `Quick test_seq_report_has_no_path;
    critical_path_matches_makespan;
    trace_rebuilds_timeline;
    Alcotest.test_case "summary percentiles" `Quick test_summary_percentiles;
    Alcotest.test_case "summary of nothing" `Quick test_summary_empty;
    Alcotest.test_case "summary drops non-finite runs" `Quick
      test_summary_non_finite_guard;
    Alcotest.test_case "summary drift" `Quick test_summary_drift;
    Alcotest.test_case "chrome export is valid json" `Quick test_chrome_is_valid_json;
    Alcotest.test_case "chrome schedule view" `Quick test_chrome_schedule_thread_per_source;
    Alcotest.test_case "prometheus exposition" `Quick test_prom_exposition;
  ]
