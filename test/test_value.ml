open Fusion_data

let check = Alcotest.check Helpers.value

let test_compare_same_type () =
  Alcotest.(check bool) "int order" true (Value.compare (Int 1) (Int 2) < 0);
  Alcotest.(check bool) "string order" true (Value.compare (String "a") (String "b") < 0);
  Alcotest.(check bool) "float order" true (Value.compare (Float 1.5) (Float 2.5) < 0);
  Alcotest.(check bool) "bool order" true (Value.compare (Bool false) (Bool true) < 0)

let test_compare_numeric_cross () =
  Alcotest.(check int) "int = float" 0 (Value.compare (Int 2) (Float 2.0));
  Alcotest.(check bool) "int < float" true (Value.compare (Int 2) (Float 2.5) < 0);
  Alcotest.(check bool) "float > int" true (Value.compare (Float 2.5) (Int 2) > 0)

let test_compare_cross_type_rank () =
  Alcotest.(check bool) "null smallest" true (Value.compare Null (Bool false) < 0);
  Alcotest.(check bool) "bool < int" true (Value.compare (Bool true) (Int 0) < 0);
  Alcotest.(check bool) "int < string" true (Value.compare (Int 999) (String "") < 0)

let test_equal_consistent_with_hash () =
  (* Int/Float equality must imply hash equality for index lookups. *)
  Alcotest.(check bool) "2 = 2.0" true (Value.equal (Int 2) (Float 2.0));
  Alcotest.(check int) "hash 2 = hash 2.0" (Value.hash (Int 2)) (Value.hash (Float 2.0))

let test_pp () =
  Alcotest.(check string) "string quoted" "'x'" (Value.to_string (String "x"));
  Alcotest.(check string) "null" "NULL" (Value.to_string Null);
  Alcotest.(check string) "int" "42" (Value.to_string (Int 42));
  Alcotest.(check string) "float" "2.5" (Value.to_string (Float 2.5));
  Alcotest.(check string) "bool" "true" (Value.to_string (Bool true))

let test_parse_typed () =
  check "int" (Int 7) (Helpers.check_ok (Value.parse Tint "7"));
  check "float" (Float 1.5) (Helpers.check_ok (Value.parse Tfloat "1.5"));
  check "bool true" (Bool true) (Helpers.check_ok (Value.parse Tbool "true"));
  check "bool 0" (Bool false) (Helpers.check_ok (Value.parse Tbool "0"));
  check "string" (String "abc") (Helpers.check_ok (Value.parse Tstring "abc"));
  check "null from empty" Null (Helpers.check_ok (Value.parse Tint ""));
  check "explicit NULL" Null (Helpers.check_ok (Value.parse Tstring "NULL"));
  ignore (Helpers.check_err "bad int" (Value.parse Tint "seven"));
  ignore (Helpers.check_err "bad bool" (Value.parse Tbool "maybe"))

let test_parse_literal () =
  check "quoted" (String "hi there") (Value.parse_literal "'hi there'");
  check "int" (Int (-3)) (Value.parse_literal "-3");
  check "float" (Float 2.25) (Value.parse_literal "2.25");
  check "bool" (Bool false) (Value.parse_literal "false");
  check "bare word is string" (String "hello") (Value.parse_literal "hello")

let test_ty_of_string () =
  Alcotest.(check bool) "int" true (Value.ty_of_string "int" = Ok Value.Tint);
  Alcotest.(check bool) "case" true (Value.ty_of_string " STRING " = Ok Value.Tstring);
  ignore (Helpers.check_err "unknown" (Value.ty_of_string "blob"))

(* Dictionary encoding (Intern) buckets values by [Value.equal] and
   [Value.hash]; these pin the cross-type numeric semantics so an
   interned id can never merge or split an equality class. *)
let test_numeric_equality_class () =
  List.iter
    (fun n ->
      let i = Value.Int n and f = Value.Float (float_of_int n) in
      Alcotest.(check int) (Printf.sprintf "compare %d = %d.0" n n) 0 (Value.compare i f);
      Alcotest.(check bool) (Printf.sprintf "equal %d = %d.0" n n) true (Value.equal i f);
      Alcotest.(check int) (Printf.sprintf "hash %d = hash %d.0" n n) (Value.hash i)
        (Value.hash f))
    [ -3; 0; 1; 42; 1_000_000 ];
  Alcotest.(check bool) "1 <> 1.5" false (Value.equal (Value.Int 1) (Value.Float 1.5));
  Alcotest.(check bool) "1 < 1.5" true (Value.compare (Value.Int 1) (Value.Float 1.5) < 0)

let value_gen =
  QCheck2.Gen.(
    oneof
      [
        return Value.Null;
        map (fun b -> Value.Bool b) bool;
        map (fun i -> Value.Int i) (int_range (-1000) 1000);
        map (fun f -> Value.Float f) (float_range (-100.0) 100.0);
        (* Integral floats force collisions with the Int generator. *)
        map (fun i -> Value.Float (float_of_int i)) (int_range (-1000) 1000);
        map (fun s -> Value.String s) (string_size (int_range 0 6));
      ])

let qcheck_equal_iff_compare_zero =
  Helpers.qtest ~count:500 "equal ⟺ compare = 0, and equal ⟹ same hash"
    QCheck2.Gen.(pair value_gen value_gen)
    (fun (a, b) -> Printf.sprintf "(%s, %s)" (Value.to_string a) (Value.to_string b))
    (fun (a, b) ->
      Value.equal a b = (Value.compare a b = 0)
      && ((not (Value.equal a b)) || Value.hash a = Value.hash b))

let qcheck_compare_total_order =
  let gen = value_gen in
  Helpers.qtest ~count:200 "Value.compare is antisymmetric and transitive-ish"
    QCheck2.Gen.(triple gen gen gen)
    (fun (a, b, c) ->
      Printf.sprintf "(%s, %s, %s)" (Value.to_string a) (Value.to_string b)
        (Value.to_string c))
    (fun (a, b, c) ->
      let sign x = compare x 0 in
      sign (Value.compare a b) = -sign (Value.compare b a)
      && (not (Value.compare a b <= 0 && Value.compare b c <= 0)
          || Value.compare a c <= 0))

let suite =
  [
    Alcotest.test_case "compare within types" `Quick test_compare_same_type;
    Alcotest.test_case "compare int/float numerically" `Quick test_compare_numeric_cross;
    Alcotest.test_case "compare across types by rank" `Quick test_compare_cross_type_rank;
    Alcotest.test_case "int/float equal implies equal hash" `Quick
      test_equal_consistent_with_hash;
    Alcotest.test_case "printing" `Quick test_pp;
    Alcotest.test_case "typed parsing" `Quick test_parse_typed;
    Alcotest.test_case "literal parsing" `Quick test_parse_literal;
    Alcotest.test_case "type names" `Quick test_ty_of_string;
    Alcotest.test_case "int/float share an equality class" `Quick
      test_numeric_equality_class;
    qcheck_equal_iff_compare_zero;
    qcheck_compare_total_order;
  ]
