(* Interval robustness analysis and the DOT export. *)

open Fusion_core
open Fusion_plan
module Workload = Fusion_workload.Workload

let env_of (instance : Workload.instance) =
  Opt_env.create ~universe:instance.Workload.spec.Workload.universe
    instance.Workload.sources instance.Workload.query

let rounds_of env (optimized : Optimized.t) =
  match Plan.rounds ~n:(Opt_env.n env) optimized.Optimized.plan with
  | Ok rs ->
    ( Array.of_list (List.map (fun r -> r.Plan.cond) rs),
      Array.of_list (List.map (fun r -> r.Plan.actions) rs) )
  | Error msg -> Alcotest.failf "not round shaped: %s" msg

let test_zero_uncertainty_collapses () =
  let instance = Workload.generate { Workload.default_spec with seed = 3 } in
  let env = env_of instance in
  let sja = Algorithms.sja env in
  let ordering, decisions = rounds_of env sja in
  let interval = Robust.plan_cost_interval env ~uncertainty:0.0 ordering decisions in
  Alcotest.(check (float 0.01)) "lo = recurrence" sja.Optimized.est_cost interval.Robust.lo;
  Alcotest.(check (float 0.01)) "hi = recurrence" sja.Optimized.est_cost interval.Robust.hi

let qcheck_interval_brackets_point_estimate =
  Helpers.qtest ~count:60 "cost interval brackets the point estimate" Helpers.spec_gen
    Helpers.spec_print (fun spec ->
      let instance = Workload.generate spec in
      let env = env_of instance in
      let sja = Algorithms.sja env in
      let ordering, decisions = rounds_of env sja in
      let i = Robust.plan_cost_interval env ~uncertainty:0.5 ordering decisions in
      i.Robust.lo <= sja.Optimized.est_cost +. 1e-6
      && sja.Optimized.est_cost <= i.Robust.hi +. 1e-6
      && i.Robust.lo >= 0.0)

let qcheck_interval_widens_with_uncertainty =
  Helpers.qtest ~count:60 "larger uncertainty, wider interval" Helpers.spec_gen
    Helpers.spec_print (fun spec ->
      let instance = Workload.generate spec in
      let env = env_of instance in
      let sja = Algorithms.sja env in
      let ordering, decisions = rounds_of env sja in
      let narrow = Robust.plan_cost_interval env ~uncertainty:0.2 ordering decisions in
      let wide = Robust.plan_cost_interval env ~uncertainty:0.8 ordering decisions in
      wide.Robust.lo <= narrow.Robust.lo +. 1e-6 && narrow.Robust.hi <= wide.Robust.hi +. 1e-6)

let qcheck_robust_plan_sound_and_bounded =
  Helpers.qtest ~count:40 "robust plans execute correctly; worst case bounds nominal"
    Helpers.spec_gen Helpers.spec_print (fun spec ->
      let instance = Workload.generate spec in
      let env = env_of instance in
      let robust = Robust.sja_robust env ~uncertainty:0.5 in
      let result = Helpers.execute_plan instance robust.Optimized.plan in
      let sja = Algorithms.sja env in
      Fusion_data.Item_set.equal result.Exec.answer
        (Reference.answer_query ~sources:instance.Workload.sources instance.Workload.query)
      (* The robust optimum's upper bound can't beat the worst case of
         the nominal optimum evaluated robustly. *)
      &&
      let ordering, decisions = rounds_of env sja in
      let nominal_hi =
        (Robust.plan_cost_interval env ~uncertainty:0.5 ordering decisions).Robust.hi
      in
      robust.Optimized.est_cost <= nominal_hi +. 1e-6)

(* --- robustness of the distributed runtime ------------------------------- *)

(* Straggling replicas are a performance hazard, not a correctness one:
   wherever the slow replica lands, the coordinator's answer must stay
   exact, and routing around it (least-cost) must never finish later
   than insisting on the straggler as primary. *)
let qcheck_coordinator_robust_to_stragglers =
  Helpers.qtest ~count:25 "coordinator exact under random straggler placement"
    QCheck2.Gen.(triple Helpers.spec_gen (int_range 0 3) (int_range 0 1))
    (fun (spec, shard, replica) ->
      Helpers.spec_print spec ^ Printf.sprintf " straggler=(s%d,#%d)" shard replica)
    (fun (spec, slow_shard, slow_replica) ->
      let open Fusion_dist in
      let instance = Workload.generate spec in
      let expected =
        Reference.answer_query ~sources:instance.Workload.sources instance.Workload.query
      in
      let shards = 4 in
      let profile_of ~shard ~source:_ ~replica profile =
        if shard = slow_shard && replica = slow_replica then
          Fusion_net.Profile.straggler profile
        else profile
      in
      let run routing =
        let cluster =
          Helpers.check_ok
            (Cluster.create ~shards ~replicas:2 ~profile_of
               (Array.to_list instance.Workload.sources))
        in
        match
          Coordinator.run
            ~config:{ Coordinator.Config.default with Coordinator.Config.routing }
            cluster instance.Workload.query
        with
        | Error msg -> Alcotest.failf "coordinator failed: %s" msg
        | Ok r -> r
      in
      let primary = run Replica.Primary in
      let least_cost = run Replica.Least_cost in
      Fusion_data.Item_set.equal primary.Coordinator.r_answer expected
      && Fusion_data.Item_set.equal least_cost.Coordinator.r_answer expected
      && least_cost.Coordinator.r_makespan <= primary.Coordinator.r_makespan +. 1e-6)

(* --- DOT export ---------------------------------------------------------- *)

let test_dot_renders () =
  let instance = Workload.generate { Workload.default_spec with seed = 5 } in
  let env = env_of instance in
  let plus = Optimizer.optimize Optimizer.Sja_plus env in
  let dot = Plan_dot.to_string plus.Optimized.plan in
  let has needle =
    Alcotest.(check bool) ("contains " ^ needle) true
      (Option.is_some (Str_find.find_substring dot needle))
  in
  has "digraph plan";
  has "answer";
  has "shape=box";
  has "->";
  (* One node per op. *)
  let ops = List.length (Plan.ops plus.Optimized.plan) in
  let node_count =
    List.length
      (List.filter (fun line -> Option.is_some (Str_find.find_substring line "[label="))
         (String.split_on_char '\n' dot))
  in
  Alcotest.(check int) "one node per op" ops node_count;
  has "doublecircle"

let test_dot_rebinding_unique_nodes () =
  let plan =
    Plan.create
      ~ops:
        [
          Op.Select { dst = "X"; cond = 0; source = 0 };
          Op.Select { dst = "Y"; cond = 1; source = 0 };
          Op.Inter { dst = "X"; args = [ "X"; "Y" ] };
        ]
      ~output:"X"
  in
  let dot = Plan_dot.to_string plan in
  (* The rebound X must reference the first X's node: edge n0 -> n2. *)
  Alcotest.(check bool) "edge from first binding" true
    (Option.is_some (Str_find.find_substring dot "n0 -> n2"))

let suite =
  [
    Alcotest.test_case "zero uncertainty collapses" `Quick test_zero_uncertainty_collapses;
    qcheck_interval_brackets_point_estimate;
    qcheck_interval_widens_with_uncertainty;
    qcheck_robust_plan_sound_and_bounded;
    qcheck_coordinator_robust_to_stragglers;
    Alcotest.test_case "dot renders" `Quick test_dot_renders;
    Alcotest.test_case "dot rebinding nodes" `Quick test_dot_rebinding_unique_nodes;
  ]
