(* The live concurrent executor: agreement with the sequential executor
   (answers, costs, fault draws), makespan bounds, request coalescing,
   the per-query deadline, and cache composition. *)

open Fusion_data
open Fusion_core
open Fusion_plan
module Workload = Fusion_workload.Workload
module Source = Fusion_source.Source
module Prng = Fusion_stats.Prng

let conds (instance : Workload.instance) =
  Fusion_query.Query.conditions instance.Workload.query

let run_seq ?cache ?policy (instance : Workload.instance) plan =
  Array.iter Source.reset_meter instance.Workload.sources;
  Exec.run ?cache ?policy ~sources:instance.Workload.sources ~conds:(conds instance)
    plan

let run_async ?cache ?policy ?deadline (instance : Workload.instance) plan =
  Array.iter Source.reset_meter instance.Workload.sources;
  Exec_async.run ?cache ?policy ?deadline ~sources:instance.Workload.sources
    ~conds:(conds instance) plan

(* --- agreement properties ------------------------------------------------- *)

let plan_gen =
  QCheck2.Gen.(pair Helpers.spec_gen (int_range 0 (List.length Optimizer.all - 1)))

let plan_print (spec, i) =
  Printf.sprintf "%s %s" (Optimizer.name (List.nth Optimizer.all i)) (Helpers.spec_print spec)

let instance_and_plan (spec, i) =
  let instance = Workload.generate spec in
  let env =
    Opt_env.create ~universe:spec.Workload.universe instance.Workload.sources
      instance.Workload.query
  in
  (instance, (Optimizer.optimize (List.nth Optimizer.all i) env).Optimized.plan)

(* The async executor sends each source exactly the request sequence the
   sequential one does, so answer and work agree; the clock only ever
   shortens: makespan ≤ the sequential elapsed time (= total cost). *)
let agreement input =
  let instance, plan = instance_and_plan input in
  let seq = run_seq instance plan in
  let par = run_async instance plan in
  Item_set.equal seq.Exec.answer par.Exec_async.answer
  && Float.abs (seq.Exec.total_cost -. par.Exec_async.total_cost) < 1e-6
  && List.for_all2
       (fun (a : Exec.step) (b : Exec_async.step) ->
         Float.abs (a.Exec.cost -. b.Exec_async.cost) < 1e-6
         && a.Exec.result_size = b.Exec_async.result_size)
       seq.Exec.steps par.Exec_async.steps
  && par.Exec_async.makespan <= par.Exec_async.total_cost +. 1e-6
  && Float.abs
       (Array.fold_left ( +. ) 0.0 par.Exec_async.busy -. par.Exec_async.total_cost)
     < 1e-6

let async_agrees_with_seq =
  Helpers.qtest ~count:80 "async executor matches the sequential one" plan_gen
    plan_print agreement

(* Same, under fault injection: identical request sequences mean
   identical per-source PRNG draws, so even the failures line up. *)
let faulty_gen = QCheck2.Gen.(triple plan_gen (oneofl [ 0.2; 0.5 ]) (int_range 0 9999))

let faulty_print (input, p, seed) =
  Printf.sprintf "p=%.1f fault_seed=%d %s" p seed (plan_print input)

let set_faults (instance : Workload.instance) ~probability ~fault_seed =
  Array.iteri
    (fun j s ->
      Source.set_fault s
        (Some { Source.probability; prng = Prng.create (fault_seed + (31 * j)) }))
    instance.Workload.sources

let async_agrees_under_faults =
  Helpers.qtest ~count:60 "async executor matches under fault injection" faulty_gen
    faulty_print
    (fun (input, probability, fault_seed) ->
      let instance, plan = instance_and_plan input in
      let policy = { Exec.retries = 3; on_exhausted = `Partial } in
      set_faults instance ~probability ~fault_seed;
      let seq = run_seq ~policy instance plan in
      set_faults instance ~probability ~fault_seed;
      let par = run_async ~policy instance plan in
      Item_set.equal seq.Exec.answer par.Exec_async.answer
      && Float.abs (seq.Exec.total_cost -. par.Exec_async.total_cost) < 1e-6
      && seq.Exec.failures = par.Exec_async.failures
      && seq.Exec.partial = par.Exec_async.partial
      && par.Exec_async.makespan <= par.Exec_async.total_cost +. 1e-6)

(* --- unit tests ----------------------------------------------------------- *)

let slow_mirror_instance () =
  let base =
    Workload.generate
      {
        Workload.default_spec with
        Workload.n_sources = 5;
        universe = 1500;
        tuples_per_source = (200, 300);
        selectivities = [| 0.1; 0.3 |];
        seed = 77;
      }
  in
  let sources =
    Array.mapi
      (fun j s ->
        if j = 0 then
          Source.create
            ~capability:(Source.capability s)
            ~profile:(Fusion_net.Profile.scale 10.0 (Source.profile s))
            (Source.relation s)
        else s)
      base.Workload.sources
  in
  { base with Workload.sources = sources }

let test_slow_mirror_overlaps () =
  (* A 10x mirror among fast sources: concurrency must hide the fast
     sources' work behind the slow one, so makespan < total work. *)
  let instance = slow_mirror_instance () in
  let env =
    Opt_env.create ~universe:instance.Workload.spec.Workload.universe
      instance.Workload.sources instance.Workload.query
  in
  let plan = (Optimizer.optimize Optimizer.Filter env).Optimized.plan in
  let par = run_async instance plan in
  Alcotest.(check bool) "makespan strictly below sequential elapsed" true
    (par.Exec_async.makespan < par.Exec_async.total_cost);
  (* The slow mirror is the critical resource: its busy time bounds the
     makespan from below. *)
  Alcotest.(check bool) "slow source dominates" true
    (par.Exec_async.makespan >= par.Exec_async.busy.(0))

let test_duplicate_selects_coalesce () =
  let instance = Workload.fig1 () in
  let plan =
    Plan.create
      ~ops:
        [
          Op.Select { dst = "X1"; cond = 0; source = 0 };
          Op.Select { dst = "X2"; cond = 0; source = 0 };
          Op.Union { dst = "X"; args = [ "X1"; "X2" ] };
        ]
      ~output:"X"
  in
  let seq = run_seq instance plan in
  let par = run_async instance plan in
  let second = List.nth par.Exec_async.steps 1 in
  Alcotest.(check bool) "second select joined the in-flight request" true
    second.Exec_async.coalesced;
  Alcotest.(check (float 1e-9)) "coalesced step is free" 0.0 second.Exec_async.cost;
  Alcotest.check Helpers.item_set "same answer as sequential" seq.Exec.answer
    par.Exec_async.answer;
  Alcotest.(check bool) "one request instead of two" true
    (par.Exec_async.total_cost < seq.Exec.total_cost)

let test_semijoin_joins_inflight_select () =
  (* Source 0 is slow: its selection is still in flight when the
     semijoin on the same condition becomes ready, so the semijoin joins
     the request and intersects locally. *)
  let instance = slow_mirror_instance () in
  let plan =
    Plan.create
      ~ops:
        [
          Op.Select { dst = "F"; cond = 0; source = 0 };
          Op.Select { dst = "P"; cond = 1; source = 1 };
          Op.Semijoin { dst = "Y"; cond = 0; source = 0; input = "P" };
          Op.Inter { dst = "X"; args = [ "F"; "Y" ] };
        ]
      ~output:"X"
  in
  let seq = run_seq instance plan in
  let par = run_async instance plan in
  let sj = List.nth par.Exec_async.steps 2 in
  Alcotest.(check bool) "semijoin coalesced with the selection" true
    sj.Exec_async.coalesced;
  Alcotest.check Helpers.item_set "derived answer agrees with a real semijoin"
    seq.Exec.answer par.Exec_async.answer

let test_deadline_caps_retries () =
  let instance = Workload.fig1 () in
  Array.iteri
    (fun j s ->
      Source.set_fault s (Some { Source.probability = 1.0; prng = Prng.create (j + 1) }))
    instance.Workload.sources;
  let env =
    Opt_env.create ~universe:instance.Workload.spec.Workload.universe
      instance.Workload.sources instance.Workload.query
  in
  let plan = (Optimizer.optimize Optimizer.Sja env).Optimized.plan in
  let policy = { Exec.retries = 100; on_exhausted = `Partial } in
  (* A deadline below one request overhead: every query gives up after
     its first failed attempt instead of burning its 100 retries. *)
  let par = run_async ~policy ~deadline:1e-9 instance plan in
  Alcotest.(check bool) "partial" true par.Exec_async.partial;
  Alcotest.(check int) "one attempt per source query"
    (Plan.source_query_count plan)
    par.Exec_async.failures

let test_cache_composes () =
  let instance = Workload.generate { Workload.default_spec with Workload.seed = 21 } in
  let env =
    Opt_env.create ~universe:instance.Workload.spec.Workload.universe
      instance.Workload.sources instance.Workload.query
  in
  let plan = (Optimizer.optimize Optimizer.Sja env).Optimized.plan in
  let cache = Exec.Query_cache.create () in
  let cold = run_async ~cache instance plan in
  let warm = run_async ~cache instance plan in
  Alcotest.check Helpers.item_set "same answer warm" cold.Exec_async.answer
    warm.Exec_async.answer;
  Alcotest.(check (float 1e-9)) "warm run is free" 0.0 warm.Exec_async.total_cost;
  Alcotest.(check (float 1e-9)) "warm run is instant" 0.0 warm.Exec_async.makespan;
  Alcotest.(check bool) "cache recorded hits" true
    ((Exec.Query_cache.stats cache).Exec.Query_cache.hits > 0)

let test_to_exec_steps () =
  let instance = Workload.fig1 () in
  let env =
    Opt_env.create ~universe:instance.Workload.spec.Workload.universe
      instance.Workload.sources instance.Workload.query
  in
  let plan = (Optimizer.optimize Optimizer.Sja env).Optimized.plan in
  let par = run_async instance plan in
  let steps = Exec_async.to_exec_steps par.Exec_async.steps in
  Alcotest.(check int) "same length" (List.length par.Exec_async.steps)
    (List.length steps);
  List.iter2
    (fun (a : Exec_async.step) (b : Exec.step) ->
      Alcotest.(check (float 1e-9)) "cost preserved" a.Exec_async.cost b.Exec.cost)
    par.Exec_async.steps steps

let suite =
  [
    async_agrees_with_seq;
    async_agrees_under_faults;
    Alcotest.test_case "slow mirror: makespan < total work" `Quick
      test_slow_mirror_overlaps;
    Alcotest.test_case "duplicate selections coalesce" `Quick
      test_duplicate_selects_coalesce;
    Alcotest.test_case "semijoin joins an in-flight selection" `Quick
      test_semijoin_joins_inflight_select;
    Alcotest.test_case "deadline caps the retry budget" `Quick test_deadline_caps_retries;
    Alcotest.test_case "query cache composes with concurrency" `Quick test_cache_composes;
    Alcotest.test_case "to_exec_steps preserves the step data" `Quick test_to_exec_steps;
  ]
