(* The runtime layer: fibre scheduler semantics (fork/await, sleep
   ordering, cancellation, timeouts, the no-leaked-fibres switch
   invariant), the per-lane domain pool, and oracle equivalence of the
   domains backend against the simulator (answers and model costs must
   match [Exec.run]/[Exec_async.run]; only the clock differs). *)

open Fusion_rt
module Workload = Fusion_workload.Workload
module Item_set = Fusion_data.Item_set
module Exec = Fusion_plan.Exec
module Exec_async = Fusion_plan.Exec_async
module Optimizer = Fusion_core.Optimizer
module Opt_env = Fusion_core.Opt_env
module Optimized = Fusion_core.Optimized

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- fibre scheduler ------------------------------------------------------ *)

let test_fork_await () =
  let r =
    Fiber.run (fun () ->
        Fiber.Switch.run (fun sw ->
            let a = Fiber.Switch.fork_promise sw (fun () -> 6 * 7) in
            let b = Fiber.Switch.fork_promise sw (fun () -> Fiber.yield (); 100) in
            Fiber.Promise.await a + Fiber.Promise.await b))
  in
  check_int "forked results combine" 142 r

let test_fork_ordering () =
  (* Fibres run cooperatively in fork order between suspension points. *)
  let log = ref [] in
  Fiber.run (fun () ->
      Fiber.Switch.run (fun sw ->
          Fiber.Switch.fork sw (fun () -> log := 1 :: !log; Fiber.yield (); log := 3 :: !log);
          Fiber.Switch.fork sw (fun () -> log := 2 :: !log; Fiber.yield (); log := 4 :: !log)));
  Alcotest.(check (list int)) "interleaved in fork order" [ 1; 2; 3; 4 ] (List.rev !log)

let test_sleep_ordering () =
  let log = ref [] in
  Fiber.run (fun () ->
      Fiber.Switch.run (fun sw ->
          Fiber.Switch.fork sw (fun () -> Fiber.sleep 0.03; log := "slow" :: !log);
          Fiber.Switch.fork sw (fun () -> Fiber.sleep 0.005; log := "fast" :: !log)));
  Alcotest.(check (list string)) "wakes in deadline order" [ "fast"; "slow" ] (List.rev !log)

let test_switch_joins () =
  (* Switch.run must not return before its fibres are done, and no
     fibre survives the switch: the leak-check invariant. *)
  Fiber.run (fun () ->
      let done_ = ref false in
      Fiber.Switch.run (fun sw ->
          Fiber.Switch.fork sw (fun () -> Fiber.sleep 0.005; done_ := true));
      check_bool "forked fibre completed before run returned" true !done_;
      check_int "no fibres outlive their switch" 0 (Fiber.pending_fibres ()))

let test_cancellation () =
  Fiber.run (fun () ->
      let cancelled = ref false and after = ref false in
      (try
         Fiber.Switch.run (fun sw ->
             Fiber.Switch.fork sw (fun () ->
                 try Fiber.sleep 60.0; after := true
                 with Fiber.Cancelled as e -> cancelled := true; raise e);
             Fiber.yield ();
             Fiber.Switch.cancel sw)
       with Fiber.Cancelled -> ());
      check_bool "sleeping fibre saw Cancelled" true !cancelled;
      check_bool "cancelled fibre did not continue" false !after;
      check_int "cancelled fibres are joined at switch exit" 0 (Fiber.pending_fibres ()))

let test_child_failure_cancels_siblings () =
  let sibling_cancelled = ref false in
  let r =
    Fiber.run (fun () ->
        match
          Fiber.Switch.run (fun sw ->
              Fiber.Switch.fork sw (fun () ->
                  try Fiber.sleep 60.0
                  with Fiber.Cancelled as e -> sibling_cancelled := true; raise e);
              Fiber.Switch.fork sw (fun () -> Fiber.yield (); failwith "boom");
              ())
        with
        | () -> "returned"
        | exception Failure msg -> msg)
  in
  Alcotest.(check string) "child failure re-raised from Switch.run" "boom" r;
  check_bool "failure cancelled the sibling" true !sibling_cancelled

let test_timeout () =
  Fiber.run (fun () ->
      (match Fiber.timeout 0.01 (fun () -> Fiber.sleep 60.0) with
      | None -> ()
      | Some () -> Alcotest.fail "slept through the timeout");
      (match Fiber.timeout 10.0 (fun () -> Fiber.sleep 0.001; 17) with
      | Some v -> check_int "fast body wins the timeout" 17 v
      | None -> Alcotest.fail "spurious timeout");
      check_int "timeout timers don't leak" 0 (Fiber.pending_fibres ()))

(* An outer cancellation arriving while an inner Switch.run is joining
   must not abort the join: children and daemons (and their
   finalizers) still complete before the inner switch returns. *)
let test_cancelled_join_runs_finalizers () =
  let child_finalized = ref false and daemon_finalized = ref false in
  Fiber.run (fun () ->
      (match
         Fiber.timeout 0.01 (fun () ->
             Fiber.Switch.run (fun sw ->
                 Fiber.Switch.fork sw (fun () ->
                     Fun.protect
                       ~finally:(fun () -> child_finalized := true)
                       (fun () -> Fiber.sleep 60.0));
                 Fiber.Switch.fork_daemon sw (fun () ->
                     Fun.protect
                       ~finally:(fun () -> daemon_finalized := true)
                       (fun () -> Fiber.sleep 60.0));
                 Fiber.sleep 60.0))
       with
      | None -> ()
      | Some () -> Alcotest.fail "slept through the timeout");
      check_bool "child finalizer ran before the switch returned" true !child_finalized;
      check_bool "daemon finalizer ran before the switch returned" true !daemon_finalized;
      check_int "no fibres leaked past the cancelled switch" 0 (Fiber.pending_fibres ()))

let test_stream_try_add () =
  Fiber.run (fun () ->
      let st = Fiber.Stream.create ~capacity:2 in
      check_bool "try_add below capacity" true (Fiber.Stream.try_add st 1);
      check_bool "try_add at capacity" true (Fiber.Stream.try_add st 2);
      check_bool "try_add refuses a full stream" false (Fiber.Stream.try_add st 3);
      check_int "buffered values unharmed" 1 (Fiber.Stream.take st);
      check_bool "take freed a slot" true (Fiber.Stream.try_add st 3);
      let got = ref 0 in
      Fiber.Switch.run (fun sw ->
          Fiber.Switch.fork sw (fun () ->
              ignore (Fiber.Stream.take st : int);
              ignore (Fiber.Stream.take st : int);
              got := Fiber.Stream.take st);
          Fiber.yield ();  (* let the reader drain the queue and park *)
          check_bool "try_add hands off to a waiting reader" true
            (Fiber.Stream.try_add st 9));
      check_int "parked reader received the value" 9 !got)

let test_semaphore_mutual_exclusion () =
  let inside = ref 0 and peak = ref 0 in
  Fiber.run (fun () ->
      let sem = Fiber.Semaphore.create 2 in
      Fiber.Switch.run (fun sw ->
          for _ = 1 to 8 do
            Fiber.Switch.fork sw (fun () ->
                Fiber.Semaphore.acquire sem;
                incr inside;
                peak := max !peak !inside;
                Fiber.yield ();
                decr inside;
                Fiber.Semaphore.release sem)
          done));
  check_int "semaphore bounds concurrency" 2 !peak

let test_stream_fifo () =
  let got = ref [] in
  Fiber.run (fun () ->
      let st = Fiber.Stream.create ~capacity:2 in
      Fiber.Switch.run (fun sw ->
          Fiber.Switch.fork sw (fun () ->
              for i = 1 to 5 do Fiber.Stream.add st i done);
          Fiber.Switch.fork sw (fun () ->
              for _ = 1 to 5 do got := Fiber.Stream.take st :: !got done)));
  Alcotest.(check (list int)) "stream preserves order through backpressure"
    [ 1; 2; 3; 4; 5 ] (List.rev !got)

let test_deadlock_detection () =
  check_bool "awaiting a never-resolved promise raises Deadlock" true
    (try
       Fiber.run (fun () ->
           let p : int Fiber.Promise.t = Fiber.Promise.create () in
           ignore (Fiber.Promise.await p));
       false
     with Fiber.Deadlock -> true)

(* --- domain pool ---------------------------------------------------------- *)

let test_pool_lane_serialization () =
  let pool = Pool.create ~domains:3 ~lanes:2 in
  let lock = Mutex.create () in
  let running = Array.make 2 0 and overlap = ref false and finished = ref 0 in
  let m = Mutex.create () and c = Condition.create () in
  for i = 0 to 19 do
    let lane = i mod 2 in
    Pool.submit pool ~lane
      (fun () ->
        Mutex.lock lock;
        running.(lane) <- running.(lane) + 1;
        if running.(lane) > 1 then overlap := true;
        Mutex.unlock lock;
        Thread.yield ();
        Mutex.lock lock;
        running.(lane) <- running.(lane) - 1;
        Mutex.unlock lock)
      (fun _ ->
        Mutex.lock m;
        incr finished;
        Condition.signal c;
        Mutex.unlock m)
  done;
  Mutex.lock m;
  while !finished < 20 do
    Condition.wait c m
  done;
  Mutex.unlock m;
  Pool.shutdown pool;
  check_bool "jobs on one lane never overlap" false !overlap

let test_pool_exception_delivery () =
  let pool = Pool.create ~domains:1 ~lanes:1 in
  let got = ref None in
  let m = Mutex.create () and c = Condition.create () in
  Pool.submit pool ~lane:0
    (fun () -> failwith "worker boom")
    (fun r ->
      Mutex.lock m;
      got := Some r;
      Condition.signal c;
      Mutex.unlock m);
  Mutex.lock m;
  while !got = None do
    Condition.wait c m
  done;
  Mutex.unlock m;
  Pool.shutdown pool;
  match !got with
  | Some (Error (Failure msg)) -> Alcotest.(check string) "exception crosses domains" "worker boom" msg
  | _ -> Alcotest.fail "expected Error (Failure _) from the worker"

let test_pool_stats () =
  let pool = Pool.create ~domains:2 ~lanes:3 in
  let s0 = Pool.stats pool in
  check_int "domains" 2 s0.Pool.domains;
  check_int "lanes" 3 s0.Pool.lane_count;
  check_int "nothing executed yet" 0 s0.Pool.executed;
  check_int "nothing queued yet" 0 s0.Pool.queued_jobs;
  let jobs = 30 in
  let m = Mutex.create () and c = Condition.create () and finished = ref 0 in
  for i = 0 to jobs - 1 do
    Pool.submit pool ~lane:(i mod 3)
      (fun () -> Thread.yield ())
      (fun _ ->
        Mutex.lock m;
        incr finished;
        Condition.signal c;
        Mutex.unlock m)
  done;
  Mutex.lock m;
  while !finished < jobs do
    Condition.wait c m
  done;
  Mutex.unlock m;
  let s = Pool.stats pool in
  Pool.shutdown pool;
  check_int "every job counted as executed" jobs s.Pool.executed;
  check_int "queues drained" 0 s.Pool.queued_jobs;
  check_bool "high water saw queueing" true (s.Pool.queue_high_water >= 1);
  check_bool "busy lanes within bounds" true
    (s.Pool.busy_lanes >= 0 && s.Pool.busy_lanes <= 3)

let test_fiber_stats () =
  check_bool "no scheduler outside run" true (Fiber.stats () = None);
  let seen = ref None in
  Fiber.run (fun () ->
      Fiber.Switch.run (fun sw ->
          Fiber.Switch.fork sw (fun () -> Fiber.sleep 0.02);
          Fiber.Switch.fork sw (fun () ->
              Fiber.yield ();
              seen := Fiber.stats ())));
  (match !seen with
  | None -> Alcotest.fail "stats unavailable inside the scheduler"
  | Some s ->
    check_bool "some fibres were live" true (s.Fiber.live >= 1);
    check_bool "sleeper registered" true (s.Fiber.sleepers >= 1);
    check_bool "counters are non-negative" true
      (s.Fiber.run_queue >= 0 && s.Fiber.io_waiting >= 0
     && s.Fiber.ext_pending >= 0));
  (* The full run slept ~20ms: the poller must have both polled and
     accumulated wait time. *)
  check_bool "gone again after run" true (Fiber.stats () = None)

let test_fiber_poll_accounting () =
  let final = ref None in
  Fiber.run (fun () ->
      Fiber.sleep 0.02;
      final := Fiber.stats ());
  match !final with
  | None -> Alcotest.fail "stats unavailable"
  | Some s ->
    check_bool "poller ran" true (s.Fiber.polls >= 1);
    check_bool "waited roughly the sleep" true (s.Fiber.poll_wait >= 0.01)

let test_stream_high_water () =
  Fiber.run (fun () ->
      let st = Fiber.Stream.create ~capacity:4 in
      check_int "empty stream" 0 (Fiber.Stream.high_water st);
      Fiber.Stream.add st 1;
      Fiber.Stream.add st 2;
      Fiber.Stream.add st 3;
      check_int "rises with occupancy" 3 (Fiber.Stream.high_water st);
      ignore (Fiber.Stream.take st : int);
      ignore (Fiber.Stream.take st : int);
      Fiber.Stream.add st 4;
      check_int "remembers the peak, not the present" 3
        (Fiber.Stream.high_water st))

(* --- runtime backends ----------------------------------------------------- *)

let test_spec_parsing () =
  check_bool "sim" (Runtime.spec_of_string "sim" = Ok `Sim) true;
  check_bool "domains" (Runtime.spec_of_string "domains" = Ok (`Domains 0)) true;
  check_bool "domains:3" (Runtime.spec_of_string "domains:3" = Ok (`Domains 3)) true;
  check_bool "garbage rejected" (Result.is_error (Runtime.spec_of_string "threads")) true;
  check_bool "domains:0 rejected" (Result.is_error (Runtime.spec_of_string "domains:0")) true

let test_domains_call_measures_wall () =
  let rt = Runtime.domains ~domains:2 ~servers:2 () in
  Fun.protect ~finally:(fun () -> Runtime.shutdown rt) @@ fun () ->
  let v, sched =
    Runtime.call rt ~id:0 ~server:1 ~ready:0.0 ~deps:[] (fun () ->
        Thread.yield ();
        ("answer", 12.5, true))
  in
  Alcotest.(check string) "value returned" "answer" v;
  check_bool "finish >= start" true Fusion_net.Sim.(sched.finish >= sched.start);
  check_int "dispatched" 1 (Runtime.dispatched rt);
  check_bool "timeline has wall-clock makespan" true
    ((Runtime.timeline rt).Fusion_net.Sim.makespan >= 0.0);
  check_bool "is_real" true (Runtime.is_real rt)

let test_runtime_publish_metrics () =
  let r = Fusion_obs.Metrics.create () in
  Fusion_obs.Metrics.with_registry r (fun () ->
      let rt = Runtime.domains ~domains:2 ~servers:2 () in
      Fun.protect ~finally:(fun () -> Runtime.shutdown rt) @@ fun () ->
      ignore
        (Runtime.call rt ~id:0 ~server:0 ~ready:0.0 ~deps:[] (fun () ->
             (1, 1.0, true)));
      (* Publish from inside the fibre scheduler so the fibre gauges
         are exported alongside the pool and GC families. *)
      Runtime.run rt (fun () -> Runtime.publish_metrics rt));
  let names =
    List.map (fun s -> s.Fusion_obs.Metrics.name) (Fusion_obs.Metrics.snapshot r)
  in
  List.iter
    (fun n -> check_bool n true (List.mem n names))
    [
      "fusion_rt_pool_domains"; "fusion_rt_pool_lanes"; "fusion_rt_calls";
      "fusion_rt_fibres_live"; "fusion_rt_polls"; "fusion_rt_gc_minor_words";
      "fusion_rt_gc_heap_words";
    ];
  let value n =
    List.find_map
      (fun s ->
        match s.Fusion_obs.Metrics.value with
        | Fusion_obs.Metrics.Vgauge v when s.Fusion_obs.Metrics.name = n -> Some v
        | _ -> None)
      (Fusion_obs.Metrics.snapshot r)
  in
  Alcotest.(check (option (float 1e-9))) "calls gauge counted the call"
    (Some 1.0) (value "fusion_rt_calls");
  Alcotest.(check (option (float 1e-9))) "pool gauge saw both domains"
    (Some 2.0) (value "fusion_rt_pool_domains")

let test_domains_concurrent_servers () =
  (* Two calls on different servers from two fibres must both complete
     under the fibre scheduler (real parallelism when cores allow). *)
  let rt = Runtime.domains ~domains:2 ~servers:2 () in
  Fun.protect ~finally:(fun () -> Runtime.shutdown rt) @@ fun () ->
  let total =
    Runtime.run rt (fun () ->
        Fiber.Switch.run (fun sw ->
            let a =
              Fiber.Switch.fork_promise sw (fun () ->
                  fst (Runtime.call rt ~id:0 ~server:0 ~ready:0.0 ~deps:[] (fun () -> (1, 0.0, true))))
            in
            let b =
              Fiber.Switch.fork_promise sw (fun () ->
                  fst (Runtime.call rt ~id:1 ~server:1 ~ready:0.0 ~deps:[] (fun () -> (2, 0.0, true))))
            in
            Fiber.Promise.await a + Fiber.Promise.await b))
  in
  check_int "both offloaded calls completed" 3 total;
  check_int "both booked" 2 (Runtime.dispatched rt)

(* --- oracle equivalence: domains backend vs the simulator ---------------- *)

let plan_of inst algo =
  let env = Opt_env.create inst.Workload.sources inst.Workload.query in
  let optimized = Optimizer.optimize algo env in
  (optimized.Optimized.plan, env.Opt_env.conds)

let instance_gen =
  QCheck2.Gen.map2
    (fun spec k -> (spec, k))
    Helpers.spec_gen
    (QCheck2.Gen.int_bound (List.length Optimizer.all - 1))

let instance_print (spec, k) =
  Printf.sprintf "%s algo=%s" (Helpers.spec_print spec)
    (Optimizer.name (List.nth Optimizer.all k))

(* Answers and model costs from the domains backend equal the
   sequential executor's: sources are deterministic (no faults here),
   so every op's value is a pure function of the data whatever the
   interleaving, and per-lane FIFO keeps each source's request
   sequence in plan order. *)
let domains_oracle_agreement (spec, k) =
  let inst = Workload.generate spec in
  let algo = List.nth Optimizer.all k in
  let plan, conds = plan_of inst algo in
  let seq = Exec.run ~sources:inst.Workload.sources ~conds plan in
  Array.iter Fusion_source.Source.reset_meter inst.Workload.sources;
  let rt = Runtime.domains ~domains:2 ~servers:(Array.length inst.Workload.sources) () in
  let dom =
    Fun.protect ~finally:(fun () -> Runtime.shutdown rt) @@ fun () ->
    Exec_async.run_on ~rt ~sources:inst.Workload.sources ~conds plan
  in
  Item_set.equal dom.Exec_async.answer seq.Exec.answer
  && abs_float (dom.Exec_async.total_cost -. seq.Exec.total_cost) < 1e-6
  && dom.Exec_async.failures = seq.Exec.failures
  && (not dom.Exec_async.partial)
  && dom.Exec_async.makespan >= 0.0

let suite =
  [
    Alcotest.test_case "fiber: fork/await" `Quick test_fork_await;
    Alcotest.test_case "fiber: fork ordering" `Quick test_fork_ordering;
    Alcotest.test_case "fiber: sleep ordering" `Quick test_sleep_ordering;
    Alcotest.test_case "fiber: switch joins fibres" `Quick test_switch_joins;
    Alcotest.test_case "fiber: cancellation" `Quick test_cancellation;
    Alcotest.test_case "fiber: child failure cancels siblings" `Quick
      test_child_failure_cancels_siblings;
    Alcotest.test_case "fiber: timeout" `Quick test_timeout;
    Alcotest.test_case "fiber: cancelled join runs finalizers" `Quick
      test_cancelled_join_runs_finalizers;
    Alcotest.test_case "fiber: stream try_add" `Quick test_stream_try_add;
    Alcotest.test_case "fiber: semaphore" `Quick test_semaphore_mutual_exclusion;
    Alcotest.test_case "fiber: stream backpressure" `Quick test_stream_fifo;
    Alcotest.test_case "fiber: deadlock detection" `Quick test_deadlock_detection;
    Alcotest.test_case "fiber: scheduler stats" `Quick test_fiber_stats;
    Alcotest.test_case "fiber: poll accounting" `Quick test_fiber_poll_accounting;
    Alcotest.test_case "fiber: stream high water" `Quick test_stream_high_water;
    Alcotest.test_case "pool: lane serialization" `Quick test_pool_lane_serialization;
    Alcotest.test_case "pool: exception delivery" `Quick test_pool_exception_delivery;
    Alcotest.test_case "pool: stats" `Quick test_pool_stats;
    Alcotest.test_case "runtime: spec parsing" `Quick test_spec_parsing;
    Alcotest.test_case "runtime: domains call" `Quick test_domains_call_measures_wall;
    Alcotest.test_case "runtime: publish metrics" `Quick test_runtime_publish_metrics;
    Alcotest.test_case "runtime: concurrent servers" `Quick test_domains_concurrent_servers;
    Helpers.qtest ~count:25 "runtime: domains answers equal the sequential oracle"
      instance_gen instance_print domains_oracle_agreement;
  ]
