(* Mediator runtime: end-to-end SQL → plan → answer, two-phase
   processing, per-source accounting. *)

open Fusion_data
open Fusion_core
module Workload = Fusion_workload.Workload
module Mediator = Fusion_mediator.Mediator

let fig1_mediator () =
  let instance = Workload.fig1 () in
  (instance, Mediator.create_exn (Array.to_list instance.Workload.sources))

let dmv_sql =
  "SELECT u1.L FROM U u1, U u2 WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'"

let expected = Helpers.items_of_strings [ "J55"; "T21" ]

let test_create_rejects_empty_and_mismatched () =
  ignore (Helpers.check_err "empty" (Mediator.create []));
  let instance = Workload.fig1 () in
  let other =
    Fusion_source.Source.create
      (Helpers.abc_relation [ Helpers.abc_row "k" 1 "x" ])
  in
  ignore
    (Helpers.check_err "schema mismatch"
       (Mediator.create (other :: Array.to_list instance.Workload.sources)))

let test_run_sql_every_algorithm () =
  let _, mediator = fig1_mediator () in
  List.iter
    (fun algo ->
      let report = Helpers.check_ok (Mediator.run_sql
          ~config:{ Mediator.Config.default with Mediator.Config.algo }
          mediator dmv_sql) in
      Alcotest.check Helpers.item_set (Optimizer.name algo) expected
        report.Mediator.answer)
    Optimizer.all

let test_run_sql_rejects_non_fusion () =
  let _, mediator = fig1_mediator () in
  ignore
    (Helpers.check_err "non-fusion"
       (Mediator.run_sql mediator
          "SELECT u1.V FROM U u1, U u2 WHERE u1.L = u2.L AND u1.V = 'dui'"));
  ignore (Helpers.check_err "parse error" (Mediator.run_sql mediator "SELECT FROM"))

let test_run_rejects_invalid_query () =
  let _, mediator = fig1_mediator () in
  let bad =
    Fusion_query.Query.create_exn [ Fusion_cond.Cond.Cmp ("Z", Fusion_cond.Cond.Eq, Value.Int 1) ]
  in
  ignore (Helpers.check_err "invalid" (Mediator.run mediator bad))

let test_runtime_config () =
  let _, mediator = fig1_mediator () in
  (* domains + sequential execution is contradictory: clear error, not
     a silent fallback. *)
  let bad =
    { Mediator.Config.default with
      Mediator.Config.concurrency = `Seq;
      runtime = `Domains 2;
    }
  in
  let msg =
    Helpers.check_err "seq on domains" (Mediator.run_sql ~config:bad mediator dmv_sql)
  in
  let contains hay needle =
    let h = String.length hay and n = String.length needle in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "error names the fix" true (contains msg "concurrency");
  (* domains + concurrent execution answers exactly what the simulator
     answers. *)
  let good =
    { Mediator.Config.default with
      Mediator.Config.concurrency = `Par;
      runtime = `Domains 2;
    }
  in
  let report = Helpers.check_ok (Mediator.run_sql ~config:good mediator dmv_sql) in
  Alcotest.check Helpers.item_set "domains answer" expected report.Mediator.answer

(* The TCP front end, in-process: a server thread on an ephemeral
   loopback port, a blocking client sending two good statements and one
   bad one, answers checked against the known fig1 result. *)
let test_tcp_front () =
  let module Tcp = Fusion_mediator.Tcp_front in
  let _, mediator = fig1_mediator () in
  let loopback = Unix.ADDR_INET (Unix.inet_addr_loopback, 0) in
  ignore
    (Helpers.check_err "sim runtime rejected"
       (Tcp.serve ~max_queries:1 ~listen:loopback mediator));
  let config =
    { Mediator.Config.default with Mediator.Config.runtime = `Domains 2 }
  in
  let addr = ref None and result = ref (Error "server never ran") in
  let m = Mutex.create () and cv = Condition.create () in
  let on_listen a =
    Mutex.lock m;
    addr := Some a;
    Condition.signal cv;
    Mutex.unlock m
  in
  let server =
    Thread.create
      (fun () ->
        result := Tcp.serve ~config ~max_queries:3 ~on_listen ~listen:loopback mediator)
      ()
  in
  Mutex.lock m;
  while !addr = None do
    Condition.wait cv m
  done;
  let connect = Option.get !addr in
  Mutex.unlock m;
  let responses =
    Helpers.check_ok (Tcp.client ~connect [ dmv_sql; "SELECT nonsense"; dmv_sql ])
  in
  Thread.join server;
  Alcotest.(check int) "three responses" 3 (List.length responses);
  let starts p l = String.length l >= String.length p && String.sub l 0 (String.length p) = p in
  let oks = List.filter (starts "ok ") responses in
  Alcotest.(check int) "two answers" 2 (List.length oks);
  Alcotest.(check int) "one parse error" 1
    (List.length (List.filter (starts "error ") responses));
  let rows = Printf.sprintf "rows=%d" (Item_set.cardinal expected) in
  List.iter
    (fun l ->
      let contains =
        let n = String.length rows and h = String.length l in
        let rec go i = i + n <= h && (String.sub l i n = rows || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "answer cardinality in the response" true contains)
    oks;
  let report = Helpers.check_ok !result in
  Alcotest.(check int) "received" 3 report.Tcp.received;
  Alcotest.(check int) "rejected" 1 report.Tcp.rejected;
  Alcotest.(check int) "connections" 1 report.Tcp.connections;
  Alcotest.(check bool) "conserves" true
    (Fusion_serve.Server.conservation_ok report.Tcp.stats)

(* The admin plane, in-process: a serve run with an admin listener on a
   second ephemeral loopback port, scraped with the blocking HTTP
   client between client batches. The exposition must carry the runtime
   and serving metric families, /statusz must parse as JSON with the
   operational sections, and the zero-threshold slow log must have seen
   the query. *)
let test_admin_front () =
  let module Tcp = Fusion_mediator.Tcp_front in
  let module Admin = Fusion_mediator.Admin_front in
  let module Json = Fusion_obs.Json in
  let _, mediator = fig1_mediator () in
  let loopback = Unix.ADDR_INET (Unix.inet_addr_loopback, 0) in
  let config =
    { Mediator.Config.default with Mediator.Config.runtime = `Domains 2 }
  in
  let addr = ref None and admin = ref None in
  let result = ref (Error "server never ran") in
  let m = Mutex.create () and cv = Condition.create () in
  let set cell a =
    Mutex.lock m;
    cell := Some a;
    Condition.signal cv;
    Mutex.unlock m
  in
  let server =
    Thread.create
      (fun () ->
        result :=
          Tcp.serve ~config ~max_queries:2 ~window:30.0 ~slow_threshold:0.0
            ~admin:loopback ~admin_on_listen:(set admin) ~on_listen:(set addr)
            ~listen:loopback mediator)
      ()
  in
  Mutex.lock m;
  while !addr = None || !admin = None do
    Condition.wait cv m
  done;
  let connect = Option.get !addr and admin_addr = Option.get !admin in
  Mutex.unlock m;
  let get path = Helpers.check_ok (Admin.http_get ~connect:admin_addr path) in
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  (* Health before any query traffic. *)
  let code, body = get "/healthz" in
  Alcotest.(check int) "healthz 200" 200 code;
  Alcotest.(check string) "healthz body" "ok\n" body;
  (* One query through the front end, then scrape mid-run. *)
  ignore (Helpers.check_ok (Tcp.client ~connect [ dmv_sql ]));
  let code, metrics = get "/metrics" in
  Alcotest.(check int) "metrics 200" 200 code;
  List.iter
    (fun family ->
      Alcotest.(check bool) (family ^ " exported") true (contains family metrics))
    [
      "fusion_rt_pool_domains";
      "fusion_rt_fibres_live";
      "fusion_serve_queued";
      "fusion_serve_window_p99";
      "# TYPE";
    ];
  let code, status = get "/statusz" in
  Alcotest.(check int) "statusz 200" 200 code;
  let j = Helpers.check_ok (Json.of_string status) in
  List.iter
    (fun key ->
      Alcotest.(check bool) ("statusz has " ^ key) true (Json.member key j <> None))
    [
      "uptime_seconds"; "runtime"; "policy"; "stats"; "shed_by_reason";
      "pool"; "scheduler"; "cache"; "tenants"; "slow_queries";
    ];
  Alcotest.(check (option string)) "runtime names the backend" (Some "domains:2")
    (Option.bind (Json.member "runtime" j) Json.to_str);
  Alcotest.(check (option (float 0.0))) "window span surfaced" (Some 30.0)
    (Option.bind (Json.member "window_span_seconds" j) Json.to_float);
  (match Json.member "tenants" j with
  | Some (Json.List (t :: _)) ->
    Alcotest.(check bool) "tenant has a window block" true
      (Json.member "window" t <> None)
  | _ -> Alcotest.fail "statusz lists no tenants");
  (match Json.member "slow_queries" j with
  | Some (Json.Obj _ as sq) ->
    (match Json.member "entries" sq with
    | Some (Json.List (_ :: _)) -> ()
    | _ -> Alcotest.fail "zero-threshold slow log saw no entries")
  | _ -> Alcotest.fail "slow_queries missing from statusz");
  let code, _ = get "/nope" in
  Alcotest.(check int) "unknown path is a 404" 404 code;
  (* The second query lets the server reach max_queries and exit. *)
  ignore (Helpers.check_ok (Tcp.client ~connect [ dmv_sql ]));
  Thread.join server;
  let report = Helpers.check_ok !result in
  Alcotest.(check int) "received" 2 report.Tcp.received;
  Alcotest.(check bool) "conserves" true
    (Fusion_serve.Server.conservation_ok report.Tcp.stats)

let test_per_source_accounting () =
  let _, mediator = fig1_mediator () in
  let report = Helpers.check_ok (Mediator.run_sql
      ~config:{ Mediator.Config.default with Mediator.Config.algo = Optimizer.Filter }
      mediator dmv_sql) in
  Alcotest.(check int) "three sources" 3 (List.length report.Mediator.per_source);
  let total =
    List.fold_left
      (fun acc (_, t) -> acc +. t.Fusion_net.Meter.cost)
      0.0 report.Mediator.per_source
  in
  Alcotest.(check (float 0.001)) "meters sum to actual cost" report.Mediator.actual_cost total;
  List.iter
    (fun (_, t) -> Alcotest.(check int) "2 requests each" 2 t.Fusion_net.Meter.requests)
    report.Mediator.per_source

let test_two_phase () =
  let _, mediator = fig1_mediator () in
  let query =
    Helpers.check_ok
      (Fusion_query.Sql.parse_fusion ~schema:(Mediator.schema mediator) ~union:"U" dmv_sql)
  in
  let report, records = Helpers.check_ok (Mediator.two_phase mediator query) in
  Alcotest.check Helpers.item_set "phase-1 answer" expected report.Mediator.answer;
  (* J55 has 2 tuples (R1 dui, R2 sp); T21 has 3 (R1 sp, R2 dui, R3 sp). *)
  Alcotest.(check int) "all answer records" 5 (List.length records.Mediator.tuples);
  Alcotest.(check bool) "fetch has a cost" true (records.Mediator.fetch_cost > 0.0);
  (* Every fetched record belongs to an answer item. *)
  List.iter
    (fun tuple ->
      let item = Tuple.item (Mediator.schema mediator) tuple in
      Alcotest.(check bool) "record of an answer item" true (Item_set.mem item expected))
    records.Mediator.tuples

let test_two_phase_beats_single_phase_on_wide_tuples () =
  (* Generated tuples are narrow, so make the comparison on a world with
     a selective query: phase 1 ships items only, phase 2 only the
     answers' records; single-phase ships every matching record. *)
  let instance =
    Workload.generate
      {
        Workload.default_spec with
        n_sources = 5;
        selectivities = [| 0.05; 0.3 |];
        seed = 51;
      }
  in
  let mediator = Mediator.create_exn (Array.to_list instance.Workload.sources) in
  let report, records =
    Helpers.check_ok (Mediator.two_phase mediator instance.Workload.query)
  in
  let two_phase_cost = report.Mediator.actual_cost +. records.Mediator.fetch_cost in
  let single = Mediator.single_phase_cost mediator instance.Workload.query in
  Alcotest.(check bool)
    (Printf.sprintf "two-phase %.1f < single-phase %.1f" two_phase_cost single)
    true (two_phase_cost < single)

let test_select_sql_projection () =
  let _, mediator = fig1_mediator () in
  let result =
    Helpers.check_ok
      (Mediator.select_sql mediator
         "SELECT u1.L, u1.V, u1.D FROM U u1, U u2 \
          WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'")
  in
  Alcotest.(check (list string)) "columns" [ "L"; "V"; "D" ] result.Mediator.columns;
  Alcotest.(check bool) "phase 2 paid" true (result.Mediator.fetch_cost > 0.0);
  (* All 5 records of J55 and T21 (Figure 1), projected. *)
  Alcotest.(check int) "five records" 5 (List.length result.Mediator.rows);
  List.iter
    (fun row ->
      match row with
      | [ Value.String l; Value.String _; Value.Int _ ] ->
        Alcotest.(check bool) "answer item" true (l = "J55" || l = "T21")
      | _ -> Alcotest.fail "unexpected row shape")
    result.Mediator.rows

let test_select_sql_merge_only_skips_phase2 () =
  let _, mediator = fig1_mediator () in
  let result = Helpers.check_ok (Mediator.select_sql mediator dmv_sql) in
  Alcotest.(check (list string)) "columns" [ "L" ] result.Mediator.columns;
  Alcotest.(check (float 0.0)) "no phase 2" 0.0 result.Mediator.fetch_cost;
  Alcotest.(check int) "two rows" 2 (List.length result.Mediator.rows)

let test_of_catalog () =
  let dir = Filename.temp_file "fusion_medcat" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () ->
      let instance =
        Workload.generate
          { Workload.default_spec with n_sources = 3; tuples_per_source = (10, 20); seed = 71 }
      in
      Workload.save ~dir instance;
      let mediator =
        Helpers.check_ok (Mediator.of_catalog (Filename.concat dir "catalog.ini"))
      in
      let report = Helpers.check_ok (Mediator.run mediator instance.Workload.query) in
      Alcotest.check Helpers.item_set "answers match direct construction"
        (Reference.answer_query ~sources:instance.Workload.sources instance.Workload.query)
        report.Mediator.answer;
      ignore (Helpers.check_err "missing file" (Mediator.of_catalog "/nonexistent/x.ini")))

let qcheck_mediator_end_to_end =
  Helpers.qtest ~count:40 "mediator answer = reference on generated worlds"
    Helpers.spec_gen Helpers.spec_print (fun spec ->
      let instance = Workload.generate spec in
      let mediator = Mediator.create_exn (Array.to_list instance.Workload.sources) in
      let report =
        Helpers.check_ok (Mediator.run
          ~config:
            { Mediator.Config.default with Mediator.Config.algo = Optimizer.Sja_plus }
          mediator instance.Workload.query)
      in
      Item_set.equal report.Mediator.answer
        (Reference.answer_query ~sources:instance.Workload.sources instance.Workload.query))

let qcheck_sql_round_trip_through_mediator =
  Helpers.qtest ~count:40 "query → SQL → mediator gives the same answer"
    Helpers.spec_gen Helpers.spec_print (fun spec ->
      let instance = Workload.generate spec in
      let mediator = Mediator.create_exn (Array.to_list instance.Workload.sources) in
      let sql =
        Fusion_query.Query.to_sql ~union:"U"
          ~merge:(Schema.merge instance.Workload.schema)
          instance.Workload.query
      in
      let direct = Helpers.check_ok (Mediator.run mediator instance.Workload.query) in
      let via_sql = Helpers.check_ok (Mediator.run_sql mediator sql) in
      Item_set.equal direct.Mediator.answer via_sql.Mediator.answer)

let suite =
  [
    Alcotest.test_case "creation errors" `Quick test_create_rejects_empty_and_mismatched;
    Alcotest.test_case "SQL end-to-end, all algorithms" `Quick test_run_sql_every_algorithm;
    Alcotest.test_case "non-fusion SQL rejected" `Quick test_run_sql_rejects_non_fusion;
    Alcotest.test_case "invalid query rejected" `Quick test_run_rejects_invalid_query;
    Alcotest.test_case "runtime selection in the config" `Quick test_runtime_config;
    Alcotest.test_case "tcp front end round trip" `Quick test_tcp_front;
    Alcotest.test_case "admin front scrape" `Quick test_admin_front;
    Alcotest.test_case "per-source accounting" `Quick test_per_source_accounting;
    Alcotest.test_case "two-phase processing" `Quick test_two_phase;
    Alcotest.test_case "two-phase beats single-phase" `Quick
      test_two_phase_beats_single_phase_on_wide_tuples;
    Alcotest.test_case "select_sql with projection" `Quick test_select_sql_projection;
    Alcotest.test_case "select_sql merge-only" `Quick test_select_sql_merge_only_skips_phase2;
    Alcotest.test_case "mediator from a catalog" `Quick test_of_catalog;
    qcheck_mediator_end_to_end;
    qcheck_sql_round_trip_through_mediator;
  ]
