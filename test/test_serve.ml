(* The serving layer: conservation under every scheduling policy,
   byte-identical single-query execution (the equivalence anchor),
   cross-query answer-cache semantics, admission-control shedding, and
   fair-share isolation under overload. *)

open Fusion_data
open Fusion_core
module Workload = Fusion_workload.Workload
module Source = Fusion_source.Source
module Prng = Fusion_stats.Prng
module Mediator = Fusion_mediator.Mediator
module Serve = Fusion_serve.Server
module Driver = Fusion_serve.Driver
module Answer_cache = Fusion_plan.Answer_cache
module Exec_async = Fusion_plan.Exec_async

let optimize instance =
  let env =
    Opt_env.create instance.Workload.sources instance.Workload.query
  in
  (env, Optimizer.optimize Optimizer.Sja_plus env)

let job_of ?(tenant = "t1") ?(priority = 0) ?deadline env (optimized : Optimized.t) =
  {
    Serve.plan = optimized.Optimized.plan;
    conds = env.Opt_env.conds;
    tenant;
    priority;
    est_cost = optimized.Optimized.est_cost;
    deadline;
    label = "";
  }

(* --- conservation -------------------------------------------------------- *)

(* submitted = queued + in_flight + completed + shed after every single
   scheduling step, under every policy, with both shed paths reachable
   (a tight in-flight cap and tight deadlines); at drain nothing is
   left queued or in flight, and the shared timeline's task ids are
   unique across queries. *)
let conservation_gen = QCheck2.Gen.(pair Helpers.spec_gen (int_range 4 14))

let conservation_print (spec, k) =
  Printf.sprintf "%d jobs, %s" k (Helpers.spec_print spec)

let check_conservation srv =
  let s = Serve.stats srv in
  if not (Serve.conservation_ok s) then
    Alcotest.fail ("conservation broken: " ^ Format.asprintf "%a" Serve.pp_stats s)

let conservation_prop =
  Helpers.qtest ~count:12 "conservation at every step, all policies" conservation_gen
    conservation_print (fun (spec, k) ->
      List.for_all
        (fun policy ->
          let instance = Workload.generate spec in
          let env, optimized = optimize instance in
          let srv =
            Serve.create ~policy ~max_inflight:3 instance.Workload.sources
          in
          let prng = Prng.create (spec.Workload.seed + 97) in
          let mean_gap = Float.max 1.0 (optimized.Optimized.est_cost /. 4.0) in
          let at = ref 0.0 in
          for i = 0 to k - 1 do
            at := !at +. Prng.exponential prng (1.0 /. mean_gap);
            let deadline =
              (* Every third job gets a budget tight enough to shed
                 once backlog builds. *)
              if i mod 3 = 2 then Some (Float.max 1.0 optimized.Optimized.est_cost)
              else None
            in
            let tenant = Printf.sprintf "t%d" ((i mod 3) + 1) in
            ignore
              (Serve.submit srv ~at:!at
                 (job_of ~tenant ~priority:(i mod 3) ?deadline env optimized));
            check_conservation srv
          done;
          while Serve.step srv do
            check_conservation srv
          done;
          let s = Serve.stats srv in
          let timeline = Serve.timeline srv in
          let ids =
            List.map (fun e -> e.Fusion_net.Sim.task.Fusion_net.Sim.id)
              timeline.Fusion_net.Sim.events
          in
          Serve.conservation_ok s && s.Serve.queued = 0 && s.Serve.in_flight = 0
          && s.Serve.submitted = k
          && List.length ids = List.length (List.sort_uniq compare ids))
        Serve.all_policies)

(* --- single-query equivalence -------------------------------------------- *)

(* A lone query through the serving stack under Fifo must be
   byte-identical to the concurrent executor driven directly: same
   answer, same per-step costs and sizes (hence the same fault-draw
   sequence), same response time. Faults are enabled to make any
   divergence in draw order visible. *)
let equivalence_gen = QCheck2.Gen.(pair Helpers.spec_gen (int_range 0 2))

let equivalence_print (spec, f) =
  Printf.sprintf "faults=%d %s" f (Helpers.spec_print spec)

let set_faults fault_seed probability sources =
  Array.iteri
    (fun j s ->
      Source.set_fault s
        (Some
           {
             Source.probability;
             prng = Prng.create (fault_seed + (31 * j));
           }))
    sources

let equivalence_prop =
  Helpers.qtest ~count:20 "single query = Exec_async byte for byte" equivalence_gen
    equivalence_print (fun (spec, fault_level) ->
      let probability = 0.15 *. float_of_int fault_level in
      let config =
        {
          Mediator.Config.default with
          Mediator.Config.concurrency = `Par;
          retries = 3;
          on_exhausted = `Partial;
        }
      in
      (* Two fresh worlds from the same spec: one executed directly,
         one through the serving stack. *)
      let direct = Workload.generate spec in
      if probability > 0.0 then set_faults 11 probability direct.Workload.sources;
      let reference =
        Helpers.check_ok
          (Mediator.create (Array.to_list direct.Workload.sources))
      in
      let report =
        Helpers.check_ok (Mediator.run ~config reference direct.Workload.query)
      in
      let served = Workload.generate spec in
      if probability > 0.0 then set_faults 11 probability served.Workload.sources;
      let med =
        Helpers.check_ok (Mediator.create (Array.to_list served.Workload.sources))
      in
      let srv = Mediator.Server.create ~config ~policy:Serve.Fifo med in
      (match Mediator.Server.submit srv ~at:0.0 served.Workload.query with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "submit failed: %s" msg);
      Mediator.Server.drain srv;
      match Mediator.Server.outcomes srv with
      | [ o ] ->
        let c = o.Mediator.Server.o_completion in
        Item_set.equal report.Mediator.answer (Option.get c.Serve.c_answer)
        && Float.equal report.Mediator.actual_cost c.Serve.c_cost
        && Float.equal report.Mediator.response_time c.Serve.c_response
        && report.Mediator.partial = c.Serve.c_partial
        && report.Mediator.steps = Exec_async.to_exec_steps c.Serve.c_steps
      | other -> Alcotest.failf "expected 1 outcome, got %d" (List.length other))

(* --- answer cache -------------------------------------------------------- *)

let outcome_label = function
  | Answer_cache.Inflight _ -> "inflight"
  | Answer_cache.Cached _ -> "cached"
  | Answer_cache.Miss -> "miss"

let check_outcome label expected actual =
  Alcotest.(check string) label expected (outcome_label actual)

let test_cache_windows () =
  let c = Answer_cache.create ~ttl:10.0 () in
  let find ready = Answer_cache.find c ~source:"R1" ~cond:"A1 < 5" ~ready () in
  let answer = Helpers.items_of_strings [ "a"; "b" ] in
  check_outcome "empty" "miss" (find 0.0);
  Answer_cache.note c ~source:"R1" ~cond:"A1 < 5" ~finish:100.0 answer;
  (match find 50.0 with
  | Answer_cache.Inflight (finish, got) ->
    Alcotest.(check (float 0.0)) "join at the leader's finish" 100.0 finish;
    Alcotest.check Helpers.item_set "shared answer" answer got
  | o -> Alcotest.failf "expected inflight, got %s" (outcome_label o));
  (match find 105.0 with
  | Answer_cache.Cached (staleness, got) ->
    Alcotest.(check (float 0.0)) "staleness accounted" 5.0 staleness;
    Alcotest.check Helpers.item_set "replayed answer" answer got
  | o -> Alcotest.failf "expected cached, got %s" (outcome_label o));
  check_outcome "ttl boundary is inclusive" "cached" (find 110.0);
  check_outcome "past the ttl" "miss" (find 110.5);
  (* The expired entry was evicted: even an in-flight-window probe
     misses now. *)
  check_outcome "evicted" "miss" (find 50.0);
  let s = Answer_cache.stats c in
  Alcotest.(check int) "lookups" 6 s.Answer_cache.lookups;
  Alcotest.(check int) "inflight hits" 1 s.Answer_cache.inflight_hits;
  Alcotest.(check int) "cached hits" 2 s.Answer_cache.cached_hits;
  Alcotest.(check int) "expirations" 1 s.Answer_cache.expirations;
  Alcotest.(check (float 1e-9)) "staleness sum" 15.0 s.Answer_cache.staleness_sum;
  Alcotest.(check (float 1e-9)) "staleness max" 10.0 s.Answer_cache.staleness_max

let test_cache_no_ttl_is_inflight_only () =
  let c = Answer_cache.create () in
  let answer = Helpers.items_of_strings [ "x" ] in
  Answer_cache.note c ~source:"R1" ~cond:"A1 < 5" ~finish:100.0 answer;
  check_outcome "still in flight" "inflight"
    (Answer_cache.find c ~source:"R1" ~cond:"A1 < 5" ~ready:99.9 ());
  (* finish = ready is NOT in flight — the historical coalescer's
     boundary, load-bearing for the equivalence invariant. *)
  check_outcome "completed answers never replayed" "miss"
    (Answer_cache.find c ~source:"R1" ~cond:"A1 < 5" ~ready:100.0 ());
  Alcotest.check_raises "negative ttl" (Invalid_argument "Answer_cache.create: negative ttl")
    (fun () -> ignore (Answer_cache.create ~ttl:(-1.0) ()))

(* A serving run with a TTL actually shares answers across queries:
   submit the same query many times far enough apart that requests
   don't overlap, close enough to stay within the TTL. *)
let test_cross_query_reuse () =
  let instance = Workload.generate { Workload.default_spec with seed = 5 } in
  let env, optimized = optimize instance in
  let run ~cache_ttl =
    let srv = Serve.create ~policy:Serve.Fifo ?cache_ttl instance.Workload.sources in
    for i = 0 to 4 do
      ignore
        (Serve.submit srv
           ~at:(float_of_int i *. 2.0 *. Float.max 1.0 optimized.Optimized.est_cost)
           (job_of env optimized))
    done;
    Serve.drain srv;
    srv
  in
  let without = run ~cache_ttl:None in
  let with_ttl = run ~cache_ttl:(Some 1e9) in
  Alcotest.(check int) "no replay without a ttl" 0
    (Serve.cache_stats without).Answer_cache.cached_hits;
  Alcotest.(check bool) "replays with a ttl" true
    ((Serve.cache_stats with_ttl).Answer_cache.cached_hits > 0);
  (* Replayed queries do the same job for less total service cost. *)
  let total srv =
    List.fold_left (fun acc (c : Serve.completion) -> acc +. c.Serve.c_cost) 0.0
      (Serve.completions srv)
  in
  Alcotest.(check bool) "cache saves work" true (total with_ttl < total without);
  List.iter
    (fun (c : Serve.completion) ->
      Alcotest.check Helpers.item_set "cached answers are the real answers"
        (Fusion_core.Reference.answer_query ~sources:instance.Workload.sources
           instance.Workload.query)
        (Option.get c.Serve.c_answer))
    (Serve.completions with_ttl)

(* --- admission control --------------------------------------------------- *)

let test_shedding () =
  let instance = Workload.generate { Workload.default_spec with seed = 9 } in
  let env, optimized = optimize instance in
  let srv = Serve.create ~policy:Serve.Fifo ~max_inflight:2 instance.Workload.sources in
  (* A burst at t=0: the cap admits 2, sheds the rest at admission. *)
  for _ = 1 to 6 do
    ignore (Serve.submit srv ~at:0.0 (job_of env optimized))
  done;
  Serve.drain srv;
  let s = Serve.stats srv in
  Alcotest.(check bool) "queue-full sheds" true (s.Serve.shed > 0);
  Alcotest.(check bool) "some still complete" true (s.Serve.completed >= 2);
  Alcotest.(check bool) "conservation" true (Serve.conservation_ok s);
  List.iter
    (fun (sh : Serve.shed) ->
      Alcotest.(check string) "reason" "queue_full"
        (Serve.shed_reason_name sh.Serve.s_reason))
    (Serve.sheds srv);
  (* An impossible deadline is refused up front. *)
  let srv2 = Serve.create ~policy:Serve.Fifo instance.Workload.sources in
  ignore
    (Serve.submit srv2 ~at:0.0
       (job_of ~deadline:(optimized.Optimized.est_cost /. 1e6) env optimized));
  Serve.drain srv2;
  match Serve.sheds srv2 with
  | [ sh ] ->
    Alcotest.(check string) "deadline shed" "deadline_unmeetable"
      (Serve.shed_reason_name sh.Serve.s_reason)
  | other -> Alcotest.failf "expected 1 shed, got %d" (List.length other)

(* --- fair share under overload ------------------------------------------- *)

(* One heavy tenant floods the server while a light tenant trickles.
   Under Fifo the light tenant waits behind the flood; Fair_share
   schedules by least service consumed, so the light tenant's mean
   response improves and the heavy tenant cannot starve it. *)
let test_fair_share_isolates_light_tenant () =
  let spec = { Workload.default_spec with seed = 17; n_sources = 4 } in
  let run policy =
    let instance = Workload.generate spec in
    let env, optimized = optimize instance in
    let srv = Serve.create ~policy ~max_inflight:64 instance.Workload.sources in
    let est = Float.max 1.0 optimized.Optimized.est_cost in
    (* Heavy: 24 jobs arriving every est/4 — 4x oversubscribed. *)
    for i = 0 to 23 do
      ignore
        (Serve.submit srv
           ~at:(float_of_int i *. (est /. 4.0))
           (job_of ~tenant:"heavy" env optimized))
    done;
    (* Light: 4 jobs spread over the same window. *)
    for i = 0 to 3 do
      ignore
        (Serve.submit srv
           ~at:(float_of_int i *. (est *. 1.5))
           (job_of ~tenant:"light" env optimized))
    done;
    Serve.drain srv;
    let mean tenant =
      let mine =
        List.filter
          (fun (c : Serve.completion) -> c.Serve.c_job.Serve.tenant = tenant)
          (Serve.completions srv)
      in
      List.fold_left (fun acc (c : Serve.completion) -> acc +. c.Serve.c_response) 0.0
        mine
      /. float_of_int (List.length mine)
    in
    (mean "light", mean "heavy", Serve.stats srv)
  in
  let fifo_light, _, fifo_stats = run Serve.Fifo in
  let fair_light, fair_heavy, fair_stats = run Serve.Fair_share in
  Alcotest.(check bool) "fifo conserves" true (Serve.conservation_ok fifo_stats);
  Alcotest.(check bool) "fair conserves" true (Serve.conservation_ok fair_stats);
  Alcotest.(check bool)
    (Printf.sprintf "fair share protects the light tenant (%.1f < %.1f)" fair_light
       fifo_light)
    true (fair_light < fifo_light);
  Alcotest.(check bool) "light is not starved behind heavy" true
    (fair_light < fair_heavy)

(* --- observability: windows, slow log, exported gauges ------------------- *)

module Window = Fusion_obs.Window
module Summary = Fusion_obs.Summary
module Slow_log = Fusion_serve.Slow_log
module Metrics = Fusion_obs.Metrics

(* Completions land in the per-tenant sliding window on the server
   clock; against a span wide enough that nothing evicts, the window
   holds exactly the completions and agrees with the cumulative summary
   (same values, same bucket count). A zero-threshold slow log sees
   every completion. *)
let test_tenant_windows_and_slow_log () =
  let instance = Workload.generate { Workload.default_spec with seed = 5 } in
  let env, optimized = optimize instance in
  let slow_log = Slow_log.create ~threshold:0.0 () in
  let srv =
    Serve.create ~policy:Serve.Fifo ~window:1e9 ~slow_log
      instance.Workload.sources
  in
  let est = Float.max 1.0 optimized.Optimized.est_cost in
  for i = 0 to 4 do
    let tenant = Printf.sprintf "t%d" ((i mod 2) + 1) in
    ignore
      (Serve.submit srv ~at:(float_of_int i *. est) (job_of ~tenant env optimized))
  done;
  Serve.drain srv;
  let s = Serve.stats srv in
  Alcotest.(check int) "all complete" 5 s.Serve.completed;
  Alcotest.(check int) "every completion was slow at threshold 0" 5
    (Slow_log.recorded slow_log);
  (match Slow_log.entries slow_log with
  | e :: _ ->
    Alcotest.(check bool) "entries carry a plan shape" true
      (String.length e.Slow_log.e_plan_shape > 0)
  | [] -> Alcotest.fail "slow log kept no entries");
  let ts = Serve.tenants srv in
  Alcotest.(check int) "both tenants tracked" 2 (List.length ts);
  let now = Serve.now srv in
  List.iter
    (fun (_, t) ->
      let w = Window.snapshot t.Serve.ts_window ~now in
      Alcotest.(check int) "window counts every completion"
        t.Serve.ts_completed w.Summary.n;
      let c = Summary.latency_percentiles t.Serve.ts_summary in
      Alcotest.(check bool) "unevicted window = cumulative summary" true
        (w.Summary.p50 = c.Summary.p50 && w.Summary.p99 = c.Summary.p99
        && w.Summary.mean = c.Summary.mean && w.Summary.max = c.Summary.max))
    ts

(* publish_metrics drops the point-in-time view into the ambient
   registry: queue gauges, both shed reasons, and the per-tenant window
   percentile family with tenant labels. *)
let test_publish_metrics () =
  let instance = Workload.generate { Workload.default_spec with seed = 5 } in
  let env, optimized = optimize instance in
  let registry = Metrics.create () in
  Metrics.with_registry registry (fun () ->
      let srv =
        Serve.create ~policy:Serve.Fifo ~window:1e9 instance.Workload.sources
      in
      for i = 0 to 3 do
        ignore (Serve.submit srv ~at:(float_of_int i) (job_of env optimized))
      done;
      Serve.drain srv;
      Serve.publish_metrics srv);
  let samples = Metrics.snapshot registry in
  let find name labels =
    List.find_opt
      (fun (s : Metrics.sample) ->
        s.Metrics.name = name
        && List.for_all (fun l -> List.mem l s.Metrics.labels) labels)
      samples
  in
  let gauge_value name labels =
    match find name labels with
    | Some { Metrics.value = Metrics.Vgauge v; _ } -> v
    | Some _ -> Alcotest.failf "%s is not a gauge" name
    | None -> Alcotest.failf "missing %s" name
  in
  Alcotest.(check (float 0.0)) "drained queue" 0.0
    (gauge_value "fusion_serve_queued" []);
  Alcotest.(check (float 0.0)) "nothing in flight" 0.0
    (gauge_value "fusion_serve_in_flight" []);
  Alcotest.(check (float 0.0)) "queue-full sheds exported" 0.0
    (gauge_value "fusion_serve_shed" [ ("reason", "queue_full") ]);
  Alcotest.(check (float 0.0)) "deadline sheds exported" 0.0
    (gauge_value "fusion_serve_shed" [ ("reason", "deadline_unmeetable") ]);
  Alcotest.(check int) "window percentile family carries the tenant" 4
    (int_of_float (gauge_value "fusion_serve_window_count" [ ("tenant", "t1") ]));
  List.iter
    (fun name ->
      match find name [ ("tenant", "t1") ] with
      | Some { Metrics.value = Metrics.Vgauge v; _ } ->
        Alcotest.(check bool) (name ^ " is finite and non-negative") true
          (Float.is_finite v && v >= 0.0)
      | _ -> Alcotest.failf "missing %s" name)
    [
      "fusion_serve_window_p50";
      "fusion_serve_window_p90";
      "fusion_serve_window_p99";
    ]

(* --- drivers ------------------------------------------------------------- *)

(* --- the domains runtime behind the serving stack ------------------------ *)

(* The same serving stack on the real-concurrency runtime: jobs pumped
   through worker domains must all complete, conserve, and answer
   exactly what the sequential executor answers. *)
let test_serve_on_domains () =
  let module Runtime = Fusion_rt.Runtime in
  let instance = Workload.generate { Workload.default_spec with seed = 5 } in
  let env, optimized = optimize instance in
  let expected =
    Fusion_plan.Exec.run ~sources:instance.Workload.sources
      ~conds:env.Opt_env.conds optimized.Optimized.plan
  in
  Array.iter Source.reset_meter instance.Workload.sources;
  let rt =
    Runtime.domains ~domains:2
      ~servers:(Array.length instance.Workload.sources) ()
  in
  Fun.protect
    ~finally:(fun () -> Runtime.shutdown rt)
    (fun () ->
      let srv = Serve.create ~policy:Serve.Fifo ~rt instance.Workload.sources in
      for i = 0 to 4 do
        ignore
          (Serve.submit srv ~at:(float_of_int i)
             (job_of ~tenant:(Printf.sprintf "t%d" (i mod 2)) env optimized))
      done;
      Serve.drain srv;
      let s = Serve.stats srv in
      Alcotest.(check int) "all complete" 5 s.Serve.completed;
      Alcotest.(check bool) "conserves" true (Serve.conservation_ok s);
      let completions = Serve.completions srv in
      Alcotest.(check int) "five completions" 5 (List.length completions);
      List.iter
        (fun (c : Serve.completion) ->
          match c.Serve.c_answer with
          | Some a ->
            Alcotest.(check bool) "answer matches sequential executor" true
              (Item_set.equal expected.Fusion_plan.Exec.answer a)
          | None -> Alcotest.fail "query failed on the domains runtime")
        completions)

let test_drivers () =
  let instance = Workload.generate { Workload.default_spec with seed = 3 } in
  let env, optimized = optimize instance in
  let srv = Serve.create ~policy:Serve.Fifo instance.Workload.sources in
  Driver.open_loop srv ~prng:(Prng.create 4) ~rate:0.01 ~count:10 (fun i ->
      job_of ~tenant:(Printf.sprintf "t%d" (i mod 2)) env optimized);
  Serve.drain srv;
  let s = Serve.stats srv in
  Alcotest.(check int) "open loop submits all" 10 s.Serve.submitted;
  Alcotest.(check bool) "conserves" true (Serve.conservation_ok s);
  (* Closed loop: population bounds concurrency; all jobs complete. *)
  let srv2 = Serve.create ~policy:Serve.Fifo instance.Workload.sources in
  Driver.closed_loop srv2 ~clients:2 ~think:5.0 ~count:9 (fun _ -> job_of env optimized);
  Serve.drain srv2;
  let s2 = Serve.stats srv2 in
  Alcotest.(check int) "closed loop issues all" 9 s2.Serve.submitted;
  Alcotest.(check int) "all complete" 9 s2.Serve.completed;
  Alcotest.(check bool) "conserves" true (Serve.conservation_ok s2);
  (* Interarrival determinism: the same seed reproduces the stream. *)
  let arrivals seed =
    let srv = Serve.create ~policy:Serve.Fifo instance.Workload.sources in
    Driver.open_loop srv ~prng:(Prng.create seed) ~rate:0.05 ~count:6 (fun _ ->
        job_of env optimized);
    Serve.drain srv;
    List.map (fun (c : Serve.completion) -> c.Serve.c_submitted) (Serve.completions srv)
  in
  Alcotest.(check bool) "same seed, same arrivals" true (arrivals 8 = arrivals 8);
  Alcotest.(check bool) "different seed, different arrivals" true
    (arrivals 8 <> arrivals 9)

let suite =
  [
    conservation_prop;
    equivalence_prop;
    Alcotest.test_case "answer cache windows and stats" `Quick test_cache_windows;
    Alcotest.test_case "no ttl means in-flight only" `Quick
      test_cache_no_ttl_is_inflight_only;
    Alcotest.test_case "cross-query reuse with a ttl" `Quick test_cross_query_reuse;
    Alcotest.test_case "admission control sheds" `Quick test_shedding;
    Alcotest.test_case "fair share isolates the light tenant" `Quick
      test_fair_share_isolates_light_tenant;
    Alcotest.test_case "tenant windows and slow log" `Quick
      test_tenant_windows_and_slow_log;
    Alcotest.test_case "publish metrics" `Quick test_publish_metrics;
    Alcotest.test_case "open and closed loop drivers" `Quick test_drivers;
    Alcotest.test_case "serving on the domains runtime" `Quick test_serve_on_domains;
  ]
