(* Property suites: item-set algebra (including the set identity that
   justifies SJA+'s difference-based pruning), plan simplification as an
   executable equivalence, and the Plan_text serialization as an exact
   inverse pair. *)

open Fusion_data
open Fusion_core
open Fusion_plan
module Workload = Fusion_workload.Workload

let set_gen =
  QCheck2.Gen.(
    map
      (fun l -> Item_set.of_list (List.map (fun i -> Value.Int i) l))
      (list_size (int_range 0 15) (int_range 0 9)))

let set_print s = Format.asprintf "%a" Item_set.pp s

let qset ?(count = 300) name prop =
  Helpers.qtest ~count name
    QCheck2.Gen.(triple set_gen set_gen set_gen)
    (fun (a, b, c) -> Printf.sprintf "a=%s b=%s c=%s" (set_print a) (set_print b) (set_print c))
    prop

let item_set_identities =
  qset "item-set identities" (fun (a, b, _) ->
      Item_set.equal (Item_set.union a Item_set.empty) a
      && Item_set.equal (Item_set.inter a Item_set.empty) Item_set.empty
      && Item_set.equal (Item_set.diff a Item_set.empty) a
      && Item_set.equal (Item_set.diff a a) Item_set.empty
      && Item_set.equal (Item_set.union a a) a
      && Item_set.equal (Item_set.inter a a) a
      && Item_set.equal (Item_set.diff a b) (Item_set.diff a (Item_set.inter a b)))

let item_set_commutativity =
  qset "item-set commutativity and associativity" (fun (a, b, c) ->
      Item_set.equal (Item_set.union a b) (Item_set.union b a)
      && Item_set.equal (Item_set.inter a b) (Item_set.inter b a)
      && Item_set.equal
           (Item_set.union a (Item_set.union b c))
           (Item_set.union (Item_set.union a b) c)
      && Item_set.equal
           (Item_set.inter a (Item_set.inter b c))
           (Item_set.inter (Item_set.inter a b) c))

(* SJA+ prunes the probe of the second fragment by what the first
   fragment already answered: with answer fragments F1, F2 and probe P,

     (F1 ∩ P) ∪ (F2 ∩ (P − (F1 ∩ P)))  =  (F1 ∪ F2) ∩ P

   i.e. shrinking the second semijoin's input by the difference loses
   nothing — the identity Section 4's postoptimization relies on. *)
let sja_plus_pruning_invariant =
  qset "difference-based pruning loses no answers" (fun (f1, f2, p) ->
      let first = Item_set.inter f1 p in
      let second = Item_set.inter f2 (Item_set.diff p first) in
      Item_set.equal
        (Item_set.union first second)
        (Item_set.inter (Item_set.union f1 f2) p))

(* --- plans over random workloads ----------------------------------------- *)

(* A random optimized plan: random small world, random algorithm. *)
let plan_gen =
  QCheck2.Gen.(pair Helpers.spec_gen (int_range 0 (List.length Optimizer.all - 1)))

let plan_print (spec, i) =
  Printf.sprintf "%s %s" (Optimizer.name (List.nth Optimizer.all i)) (Helpers.spec_print spec)

let instance_and_plan (spec, i) =
  let instance = Workload.generate spec in
  let env =
    Opt_env.create ~universe:spec.Workload.universe instance.Workload.sources
      instance.Workload.query
  in
  (instance, (Optimizer.optimize (List.nth Optimizer.all i) env).Optimized.plan)

let simplify_is_equivalent =
  Helpers.qtest ~count:80 "simplify is observationally equivalent" plan_gen plan_print
    (fun input ->
      let instance, plan = instance_and_plan input in
      let before = Helpers.execute_plan instance plan in
      let after = Helpers.execute_plan instance (Simplify.simplify plan) in
      Item_set.equal before.Exec.answer after.Exec.answer
      && Float.abs (before.Exec.total_cost -. after.Exec.total_cost) < 1e-6)

let simplify_is_idempotent =
  Helpers.qtest ~count:80 "simplify is idempotent" plan_gen plan_print (fun input ->
      let _, plan = instance_and_plan input in
      let once = Simplify.simplify plan in
      Simplify.simplify once = once)

let plan_text_round_trip =
  Helpers.qtest ~count:80 "plan text round-trips exactly" plan_gen plan_print
    (fun input ->
      let _, plan = instance_and_plan input in
      match Plan_text.of_string (Plan_text.to_string plan) with
      | Ok plan' -> plan' = plan
      | Error msg -> QCheck2.Test.fail_reportf "reparse failed: %s" msg)

let suite =
  [
    item_set_identities;
    item_set_commutativity;
    sja_plus_pruning_invariant;
    simplify_is_equivalent;
    simplify_is_idempotent;
    plan_text_round_trip;
  ]
