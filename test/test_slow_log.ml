(* The structured slow-query log: threshold gating (strictly-slower
   records), the bounded newest-first ring, the plan-shape summary,
   the per-source breakdown, and the critical path over a hand-built
   schedule where the bounding chain is known by construction. *)

module Slow_log = Fusion_serve.Slow_log
module Exec_async = Fusion_plan.Exec_async
module Op = Fusion_plan.Op
module Json = Fusion_obs.Json

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let tiny_plan () =
  Helpers.check_ok
    (Fusion_plan.Plan_text.of_string
       "A := sq(c1, R1)\nB := sq(c1, R2)\nX := union(A, B)\nanswer X\n")

(* A source-query step pinned to a schedule slot. *)
let step ~task ~server ~deps ~start ~finish ?(cost = 1.0) ?(dispatched = true) ()
    =
  {
    Exec_async.op =
      Op.Select { dst = Printf.sprintf "X%d" task; cond = 0; source = server };
    cost;
    result_size = 1;
    start;
    finish;
    coalesced = not dispatched;
    sched = Some { Exec_async.task; server; deps; dispatched };
  }

(* A local operation: no schedule slot, invisible to the breakdown and
   the critical path. *)
let local_step () =
  {
    Exec_async.op = Op.Union { dst = "U"; args = [ "X0"; "X1" ] };
    cost = 0.0;
    result_size = 2;
    start = 0.0;
    finish = 0.0;
    coalesced = false;
    sched = None;
  }

let test_plan_shape () =
  check_str "operator summary in first-appearance order" "3 ops: sq*2 union"
    (Slow_log.plan_shape (tiny_plan ()))

let test_threshold_gate () =
  let log = Slow_log.create ~threshold:0.5 () in
  let note resp =
    Slow_log.note log ~id:1 ~tenant:"t" ~label:"" ~plan:(tiny_plan ())
      ~submitted:0.0 ~response:resp ~cost:1.0 ~failed:None []
  in
  note 0.4;
  note 0.5;
  check_int "at or under the threshold is not slow" 0 (Slow_log.recorded log);
  note 0.6;
  check_int "strictly slower records" 1 (Slow_log.recorded log)

let test_ring_eviction () =
  let log = Slow_log.create ~capacity:2 ~threshold:0.0 () in
  List.iter
    (fun id ->
      Slow_log.note log ~id ~tenant:"t" ~label:(string_of_int id)
        ~plan:(tiny_plan ()) ~submitted:0.0 ~response:1.0 ~cost:1.0 ~failed:None
        [])
    [ 1; 2; 3 ];
  check_int "all three counted" 3 (Slow_log.recorded log);
  Alcotest.(check (list int))
    "newest two kept, newest first" [ 3; 2 ]
    (List.map (fun e -> e.Slow_log.e_id) (Slow_log.entries log))

let test_critical_path_diamond () =
  (* t2 waits on t0 (finishes at 3) and t1 (finishes at 5): the chain
     that bounded the response is t1 -> t2, never t0. *)
  let steps =
    [
      step ~task:0 ~server:0 ~deps:[] ~start:0.0 ~finish:3.0 ();
      step ~task:1 ~server:1 ~deps:[] ~start:0.0 ~finish:5.0 ();
      local_step ();
      step ~task:2 ~server:0 ~deps:[ 0; 1 ] ~start:5.0 ~finish:9.0 ();
    ]
  in
  let hops = Slow_log.critical_path steps in
  Alcotest.(check (list int))
    "the slow branch is the path" [ 1; 2 ]
    (List.map (fun h -> h.Slow_log.h_task) hops);
  (match List.rev hops with
  | last :: _ ->
    Alcotest.(check (float 0.0)) "last hop ends the query" 9.0 last.Slow_log.h_finish
  | [] -> Alcotest.fail "empty path");
  check_str "hops carry the operator" "sq" (List.hd hops).Slow_log.h_op

let test_critical_path_tiebreak () =
  let steps =
    [
      step ~task:0 ~server:0 ~deps:[] ~start:0.0 ~finish:4.0 ();
      step ~task:1 ~server:1 ~deps:[] ~start:0.0 ~finish:4.0 ();
      step ~task:2 ~server:0 ~deps:[ 0; 1 ] ~start:4.0 ~finish:6.0 ();
    ]
  in
  Alcotest.(check (list int))
    "equal finishes break to the higher task id" [ 1; 2 ]
    (List.map (fun h -> h.Slow_log.h_task) (Slow_log.critical_path steps));
  check_bool "no scheduled steps, no path" true (Slow_log.critical_path [ local_step () ] = [])

let test_source_breakdown_and_json () =
  let steps =
    [
      step ~task:0 ~server:1 ~deps:[] ~start:0.0 ~finish:2.0 ~cost:2.0 ();
      step ~task:1 ~server:0 ~deps:[] ~start:0.0 ~finish:1.0 ~cost:1.0 ();
      (* Coalesced onto task 0's request: counts as a request at the
         source but not as a dispatch, and carries no cost. *)
      step ~task:2 ~server:1 ~deps:[] ~start:0.0 ~finish:2.0 ~cost:0.0
        ~dispatched:false ();
      step ~task:3 ~server:1 ~deps:[ 0 ] ~start:2.0 ~finish:3.0 ~cost:1.0 ();
    ]
  in
  let log = Slow_log.create ~threshold:0.0 () in
  Slow_log.note log ~id:7 ~tenant:"t1" ~label:"SELECT ..." ~plan:(tiny_plan ())
    ~submitted:1.0 ~response:3.0 ~cost:4.0 ~failed:None steps;
  match Slow_log.entries log with
  | [ e ] ->
    (match e.Slow_log.e_sources with
    | [ a; b ] ->
      check_int "sources ascend" 0 a.Slow_log.sl_server;
      check_int "server 0 requests" 1 a.Slow_log.sl_requests;
      check_int "server 1 requests" 3 b.Slow_log.sl_requests;
      check_int "coalesced request did not dispatch" 2 b.Slow_log.sl_dispatched;
      Alcotest.(check (float 1e-9)) "cost charged at server 1" 3.0 b.Slow_log.sl_cost
    | l -> Alcotest.failf "expected two source lines, got %d" (List.length l));
    (* The JSON view serializes and keeps the fields an operator greps. *)
    let j = Slow_log.to_json log in
    check_bool "serializes" true (String.length (Json.to_string j) > 0);
    (match Json.member "entries" j with
    | Some (Json.List [ je ]) ->
      Alcotest.(check (option int)) "id" (Some 7)
        (Option.bind (Json.member "id" je) Json.to_int);
      Alcotest.(check (option string)) "label" (Some "SELECT ...")
        (Option.bind (Json.member "label" je) Json.to_str);
      Alcotest.(check (option string)) "plan shape" (Some "3 ops: sq*2 union")
        (Option.bind (Json.member "plan_shape" je) Json.to_str)
    | _ -> Alcotest.fail "expected one JSON entry")
  | l -> Alcotest.failf "expected one entry, got %d" (List.length l)

let test_create_validation () =
  let raises f =
    match f () with _ -> false | exception Invalid_argument _ -> true
  in
  check_bool "negative threshold rejected" true
    (raises (fun () -> Slow_log.create ~threshold:(-1.0) ()));
  check_bool "nan threshold rejected" true
    (raises (fun () -> Slow_log.create ~threshold:Float.nan ()));
  check_bool "capacity 0 rejected" true
    (raises (fun () -> Slow_log.create ~capacity:0 ~threshold:1.0 ()))

let suite =
  [
    Alcotest.test_case "plan shape" `Quick test_plan_shape;
    Alcotest.test_case "threshold gate" `Quick test_threshold_gate;
    Alcotest.test_case "ring eviction" `Quick test_ring_eviction;
    Alcotest.test_case "critical path diamond" `Quick test_critical_path_diamond;
    Alcotest.test_case "critical path tiebreak" `Quick test_critical_path_tiebreak;
    Alcotest.test_case "source breakdown and json" `Quick
      test_source_breakdown_and_json;
    Alcotest.test_case "create validation" `Quick test_create_validation;
  ]
