(* The dictionary-encoded data plane: Intern unit tests and equivalence
   of the flat Item_set against the historical Set.Make reference
   (Item_set_ref) on randomized operation sequences.

   The equivalence tests are the safety net for the representation
   rewrite: every public observation — to_list, cardinal, mem, subset,
   equal, compare sign, fold order, filter — must agree with the AVL
   implementation. Generators are tuned to cross the Ids/Bits density
   thresholds in both directions so the adaptive switch itself is
   exercised, and a mixed Int/Float generator pins the numeric-bridge
   equality classes. *)

open Fusion_data

(* --- Intern ------------------------------------------------------------- *)

let test_intern_basics () =
  let t = Intern.create ~name:"t" () in
  Alcotest.(check int) "empty" 0 (Intern.size t);
  let a = Intern.intern t (Value.String "a") in
  let b = Intern.intern t (Value.String "b") in
  Alcotest.(check bool) "distinct ids" true (a <> b);
  Alcotest.(check int) "idempotent" a (Intern.intern t (Value.String "a"));
  Alcotest.(check int) "size" 2 (Intern.size t);
  Alcotest.(check (option int)) "find hit" (Some b) (Intern.find t (Value.String "b"));
  Alcotest.(check (option int)) "find miss" None (Intern.find t (Value.String "zz"));
  Alcotest.check Helpers.value "value roundtrip" (Value.String "a") (Intern.value t a);
  Alcotest.(check bool) "bad id raises" true
    (try
       ignore (Intern.value t 99);
       false
     with Invalid_argument _ -> true)

let test_intern_numeric_bridge () =
  (* Int 2 and Float 2.0 are one equality class: one id, first spelling
     kept as the representative. *)
  let t = Intern.create () in
  let i = Intern.intern t (Value.Int 2) in
  let f = Intern.intern t (Value.Float 2.0) in
  Alcotest.(check int) "same id" i f;
  Alcotest.check Helpers.value "first spelling wins" (Value.Int 2) (Intern.value t i);
  Alcotest.(check int) "one class" 1 (Intern.size t)

let test_intern_growth () =
  (* Push past the initial array capacity. *)
  let t = Intern.create () in
  for i = 0 to 999 do
    ignore (Intern.intern t (Value.Int i))
  done;
  Alcotest.(check int) "1000 classes" 1000 (Intern.size t);
  Alcotest.check Helpers.value "id 637" (Value.Int 637)
    (Intern.value t (Option.get (Intern.find t (Value.Int 637))))

(* --- representation switching ------------------------------------------ *)

let ints lo hi =
  let rec go acc i = if i < lo then acc else go (Value.Int i :: acc) (i - 1) in
  go [] hi

let test_adaptive_repr () =
  (* A fresh scope so id density is under the test's control. *)
  let tbl = Intern.create () in
  let dense = Item_set.of_list_in tbl (ints 0 999) in
  Alcotest.(check string) "dense range -> bits" "bits" (Item_set.Debug.repr dense);
  let sparse =
    Item_set.of_list_in tbl (List.filteri (fun i _ -> i mod 100 = 0) (ints 0 999))
  in
  Alcotest.(check string) "sparse subset -> ids" "ids" (Item_set.Debug.repr sparse);
  Alcotest.(check string) "small -> ids" "ids"
    (Item_set.Debug.repr (Item_set.of_list_in tbl (ints 0 9)));
  (* Ops cross the threshold in both directions. *)
  Alcotest.(check string) "bits \\ bits -> empty" "empty"
    (Item_set.Debug.repr (Item_set.diff dense dense));
  Alcotest.(check string) "bits ∩ sparse stays small" "ids"
    (Item_set.Debug.repr (Item_set.inter dense sparse));
  let lo = Item_set.of_list_in tbl (ints 0 499) in
  let hi = Item_set.of_list_in tbl (ints 500 999) in
  Alcotest.(check string) "union of halves -> bits" "bits"
    (Item_set.Debug.repr (Item_set.union lo hi));
  Alcotest.(check bool) "equal across construction paths" true
    (Item_set.equal dense (Item_set.union lo hi))

let test_cross_scope_ops () =
  let ta = Intern.create ~name:"a" () and tb = Intern.create ~name:"b" () in
  let sa = Item_set.of_list_in ta (ints 0 9) in
  let sb = Item_set.of_list_in tb (ints 5 14) in
  Alcotest.(check int) "cross-scope inter" 5 (Item_set.cardinal (Item_set.inter sa sb));
  Alcotest.(check int) "cross-scope union" 15 (Item_set.cardinal (Item_set.union sa sb));
  Alcotest.(check bool) "cross-scope equal" true
    (Item_set.equal sa (Item_set.of_list_in tb (ints 0 9)));
  Alcotest.(check bool) "cross-scope subset" true
    (Item_set.subset (Item_set.of_list_in tb (ints 2 4)) sa)

(* --- flat vs reference equivalence ------------------------------------- *)

(* Observations must agree between a flat set and its reference image.
   Lists compare with Value.compare (not structurally): with mixed
   Int/Float inputs the two implementations may surface different
   spellings of the same equality class (first-interned vs
   first-added), which is the documented representative caveat. *)
let agrees flat reference =
  List.equal
    (fun a b -> Value.compare a b = 0)
    (Item_set.to_list flat)
    (Item_set_ref.to_list reference)
  && Item_set.cardinal flat = Item_set_ref.cardinal reference
  && Item_set.is_empty flat = Item_set_ref.is_empty reference

(* One random operation tree, evaluated in both implementations. *)
type op_tree =
  | Leaf of Value.t list
  | Union of op_tree * op_tree
  | Inter of op_tree * op_tree
  | Diff of op_tree * op_tree
  | Add of Value.t * op_tree
  | Filter of int * op_tree (* keep values with (hash mod 3) = k *)

let rec eval_flat = function
  | Leaf vs -> Item_set.of_list vs
  | Union (a, b) -> Item_set.union (eval_flat a) (eval_flat b)
  | Inter (a, b) -> Item_set.inter (eval_flat a) (eval_flat b)
  | Diff (a, b) -> Item_set.diff (eval_flat a) (eval_flat b)
  | Add (v, a) -> Item_set.add v (eval_flat a)
  | Filter (k, a) -> Item_set.filter (fun v -> Value.hash v mod 3 = k) (eval_flat a)

let rec eval_ref = function
  | Leaf vs -> Item_set_ref.of_list vs
  | Union (a, b) -> Item_set_ref.union (eval_ref a) (eval_ref b)
  | Inter (a, b) -> Item_set_ref.inter (eval_ref a) (eval_ref b)
  | Diff (a, b) -> Item_set_ref.diff (eval_ref a) (eval_ref b)
  | Add (v, a) -> Item_set_ref.add v (eval_ref a)
  | Filter (k, a) -> Item_set_ref.filter (fun v -> Value.hash v mod 3 = k) (eval_ref a)

let rec pp_tree = function
  | Leaf vs -> Printf.sprintf "leaf(%d)" (List.length vs)
  | Union (a, b) -> Printf.sprintf "(%s ∪ %s)" (pp_tree a) (pp_tree b)
  | Inter (a, b) -> Printf.sprintf "(%s ∩ %s)" (pp_tree a) (pp_tree b)
  | Diff (a, b) -> Printf.sprintf "(%s \\ %s)" (pp_tree a) (pp_tree b)
  | Add (v, a) -> Printf.sprintf "add(%s, %s)" (Value.to_string v) (pp_tree a)
  | Filter (k, a) -> Printf.sprintf "filter%d(%s)" k (pp_tree a)

let tree_gen value_gen =
  let open QCheck2.Gen in
  let leaf = map (fun vs -> Leaf vs) (list_size (int_range 0 120) value_gen) in
  fix
    (fun self depth ->
      if depth = 0 then leaf
      else
        oneof
          [
            leaf;
            map2 (fun a b -> Union (a, b)) (self (depth - 1)) (self (depth - 1));
            map2 (fun a b -> Inter (a, b)) (self (depth - 1)) (self (depth - 1));
            map2 (fun a b -> Diff (a, b)) (self (depth - 1)) (self (depth - 1));
            map2 (fun v a -> Add (v, a)) value_gen (self (depth - 1));
            map2 (fun k a -> Filter (k, a)) (int_range 0 2) (self (depth - 1));
          ])
    3

(* Dense int ranges cross the bitset threshold; the offset de-aligns
   word bases between operands. *)
let dense_int_gen =
  QCheck2.Gen.(
    let* off = int_range 0 200 in
    map (fun i -> Value.Int (off + i)) (int_range 0 300))

let sparse_value_gen =
  QCheck2.Gen.(
    oneof
      [
        map (fun i -> Value.Int i) (int_range 0 10_000);
        map (fun s -> Value.String s) (string_size (int_range 1 3));
      ])

let mixed_numeric_gen =
  QCheck2.Gen.(
    oneof
      [
        map (fun i -> Value.Int i) (int_range 0 50);
        map (fun i -> Value.Float (float_of_int i)) (int_range 0 50);
        map (fun i -> Value.Float (float_of_int i /. 4.0)) (int_range 0 200);
      ])

let equivalence_test name value_gen =
  Helpers.qtest ~count:200 name (tree_gen value_gen) pp_tree (fun tree ->
      let flat = eval_flat tree and reference = eval_ref tree in
      agrees flat reference
      &&
      (* Derived observations agree too. *)
      let l = Item_set_ref.to_list reference in
      List.for_all (fun v -> Item_set.mem v flat) l
      && (not (Item_set.is_empty flat))
         = List.exists (fun v -> Item_set.mem v flat) l
      &&
      (* fold enumerates in the same order as the reference fold. *)
      List.equal
        (fun a b -> Value.compare a b = 0)
        (List.rev (Item_set.fold (fun v acc -> v :: acc) flat []))
        (List.rev (Item_set_ref.fold (fun v acc -> v :: acc) reference [])))

let pair_relations_test =
  Helpers.qtest ~count:200 "subset/equal/compare agree with reference"
    QCheck2.Gen.(pair (tree_gen dense_int_gen) (tree_gen dense_int_gen))
    (fun (a, b) -> Printf.sprintf "%s vs %s" (pp_tree a) (pp_tree b))
    (fun (ta, tb) ->
      let fa = eval_flat ta and fb = eval_flat tb in
      let ra = eval_ref ta and rb = eval_ref tb in
      Item_set.subset fa fb = Item_set_ref.subset ra rb
      && Item_set.equal fa fb = Item_set_ref.equal ra rb
      && compare (Item_set.compare fa fb) 0 = compare (Item_set_ref.compare ra rb) 0
      && Item_set.subset (Item_set.inter fa fb) fa
      && Item_set.subset fa (Item_set.union fa fb))

let hash_consistency_test =
  Helpers.qtest ~count:200 "equal sets hash equal"
    QCheck2.Gen.(pair (tree_gen dense_int_gen) (tree_gen dense_int_gen))
    (fun (a, b) -> Printf.sprintf "%s vs %s" (pp_tree a) (pp_tree b))
    (fun (ta, tb) ->
      let fa = eval_flat ta and fb = eval_flat tb in
      (not (Item_set.equal fa fb)) || Item_set.hash fa = Item_set.hash fb)

let suite =
  [
    Alcotest.test_case "intern basics" `Quick test_intern_basics;
    Alcotest.test_case "intern int/float bridge" `Quick test_intern_numeric_bridge;
    Alcotest.test_case "intern growth" `Quick test_intern_growth;
    Alcotest.test_case "adaptive ids/bits switching" `Quick test_adaptive_repr;
    Alcotest.test_case "cross-scope operations" `Quick test_cross_scope_ops;
    equivalence_test "flat ≡ reference (dense ints)" dense_int_gen;
    equivalence_test "flat ≡ reference (sparse mixed)" sparse_value_gen;
    equivalence_test "flat ≡ reference (int/float classes)" mixed_numeric_gen;
    pair_relations_test;
    hash_consistency_test;
  ]
